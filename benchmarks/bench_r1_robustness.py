"""R1 — pool generation robustness under the full fault-injection axes.

E6 sweeps only the ``loss_rate`` axis; this benchmark exercises the
remaining :class:`repro.netsim.link.FaultModel` knobs — ``jitter_s``
(bounded extra delay), ``reorder_window`` (hold-back displacement) and
``duplicate_rate`` (a second delivered copy) — on the client access
link of the ``degraded-network`` preset.

Claim measured: Algorithm 1 over the unified transport is *correct*
under every non-lossy fault the model can impose. Jitter and
reordering only stretch latency (per-attempt timeouts absorb them);
duplicated replies are suppressed by the transport's per-attempt socket
discipline, never double-delivered. Faults therefore cost elapsed time,
not availability and not pool quality.
"""

from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial

from benchmarks.conftest import CACHE_DIR, run_once

FIXED = {"preset": "degraded-network", "corrupted": 0}

GRID = ParameterGrid(
    {"jitter_s": (0.0, 0.04), "reorder_window": (0.0, 0.04),
     "duplicate_rate": (0.0, 0.25)},
    fixed=FIXED,
    name="r1_robustness",
)
RUNNER = CampaignRunner(pool_attack_trial, trials_per_point=3,
                        base_seed=1100, cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid.from_points(
    [{"jitter_s": 0.0, "reorder_window": 0.0, "duplicate_rate": 0.0},
     {"jitter_s": 0.04, "reorder_window": 0.04, "duplicate_rate": 0.25}],
    fixed=FIXED,
    name="r1_robustness_smoke",
)
SMOKE_RUNNER = CampaignRunner(pool_attack_trial, base_seed=1100,
                              cache_dir=CACHE_DIR)


def bench_r1_robustness(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "r1_robustness.json")

    rows = []
    for summary in result.summaries:
        elapsed = summary["elapsed"]
        rows.append([
            f"{summary.params['jitter_s'] * 1000:.0f} ms",
            f"{summary.params['reorder_window'] * 1000:.0f} ms",
            f"{summary.params['duplicate_rate']:.0%}",
            "yes" if summary["ok"].mean == 1.0 else
            f"{summary['ok'].mean:.0%}",
            round(summary["pool_size"].mean),
            f"{summary['benign_fraction'].mean:.0%}",
            f"{elapsed.mean:.3f} ± {elapsed.mean - elapsed.ci_low:.3f} s",
        ])
    emit_table(
        "r1_robustness",
        "R1: pool generation under jitter / reordering / duplication "
        "faults on the access link",
        ["extra jitter", "reorder window", "duplicate rate",
         "pool produced", "pool size", "benign fraction", "elapsed (95% CI)"],
        rows,
        notes="Non-lossy faults never cost correctness: every grid "
              "point produces a full, fully benign pool. Duplicated "
              "replies are absorbed by the transport's suppression; "
              "jitter and reordering only show up as elapsed time.")

    # Correctness is fault-invariant on these axes.
    for summary in result.summaries:
        assert summary["ok"].mean == 1.0, (
            f"pool generation failed under faults {summary.params}")
        assert summary["benign_fraction"].mean == 1.0
        assert summary["voted_attacker_share"].mean == 0.0

    # Jitter costs latency: the jittered corner is no faster than the
    # fault-free baseline.
    clean = result.metric("elapsed", jitter_s=0.0, reorder_window=0.0,
                          duplicate_rate=0.0).mean
    if smoke:
        worst = result.metric("elapsed", jitter_s=0.04,
                              reorder_window=0.04,
                              duplicate_rate=0.25).mean
    else:
        worst = result.metric("elapsed", jitter_s=0.04,
                              reorder_window=0.0, duplicate_rate=0.0).mean
    assert worst >= clean, (
        f"faulted run ({worst:.4f}s) beat the clean baseline "
        f"({clean:.4f}s)")
