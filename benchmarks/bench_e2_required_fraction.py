"""E2 — §III-a: the attacker needs x ≥ y of the resolvers.

Claim reproduced: with Algorithm 1, corrupting ``c`` of ``N`` resolvers
yields *exactly* a fraction c/N of the generated pool, so controlling a
fraction y of the pool requires ⌈yN⌉ corrupted resolvers — measured
end-to-end with real compromised providers, and cross-checked against
the closed form.
"""

from repro.analysis.model import required_corrupted_resolvers
from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.netsim.address import IPAddress
from repro.scenarios import build_pool_scenario

from benchmarks.conftest import run_once

FORGED = [f"203.0.113.{i + 1}" for i in range(8)]


def measure_fraction(n: int, corrupted: int, seed: int) -> float:
    scenario = build_pool_scenario(seed=seed, num_providers=n,
                                   pool_size=40, answers_per_query=4)
    if corrupted:
        corrupt_first_k(scenario.providers, corrupted, CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.SUBSTITUTE,
            forged_addresses=FORGED[:4]))
    pool = scenario.generate_pool_sync()
    forged_set = {IPAddress(a) for a in FORGED}
    return sum(1 for a in pool.addresses if a in forged_set) / len(
        pool.addresses)


def sweep():
    results = []
    for n in (3, 5, 9):
        for corrupted in range(n + 1):
            fraction = measure_fraction(n, corrupted, seed=200 + n)
            results.append((n, corrupted, fraction))
    return results


def bench_e2_required_fraction(benchmark, emit_table):
    results = run_once(benchmark, sweep)

    rows = []
    for n, corrupted, fraction in results:
        needed_for_majority = required_corrupted_resolvers(n, 0.5)
        rows.append([
            n, corrupted,
            f"{fraction:.3f}",
            f"{corrupted / n:.3f}",
            "yes" if fraction > 0.5 else "no",
            needed_for_majority,
        ])
    emit_table(
        "e2_required_fraction",
        "E2 / §III-a: attacker pool share vs corrupted resolvers",
        ["N", "corrupted", "measured share", "closed form c/N",
         "majority?", "⌈N/2⌉ needed"],
        rows,
        notes="Measured share equals c/N exactly (Algorithm 1's bound); "
              "majority is reached only at c ≥ ⌈N/2⌉ — the paper's x ≥ y.")

    for n, corrupted, fraction in results:
        assert abs(fraction - corrupted / n) < 1e-9
        if fraction > 0.5:
            assert corrupted >= required_corrupted_resolvers(n, 0.5)
