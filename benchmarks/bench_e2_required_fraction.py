"""E2 — §III-a: the attacker needs x ≥ y of the resolvers.

Claim reproduced: with Algorithm 1, corrupting ``c`` of ``N`` resolvers
yields *exactly* a fraction c/N of the generated pool, so controlling a
fraction y of the pool requires ⌈yN⌉ corrupted resolvers — measured
end-to-end with real compromised providers, and cross-checked against
the closed form.

Declared in grid-over-spec form (the first of the ROADMAP's remaining
preset-kwarg grids to migrate): one base :func:`pool_spec` carrying an
explicit :class:`ResolverSpec` and access :class:`LinkSpec`, whose
dotted paths the campaign sweeps directly — ``provider.count`` ×
``provider.corrupted`` (the paper's axes) × ``network.access.latency``
(a LinkSpec axis). The corruption bound is a *combinatorial* property
of Algorithm 1, so the measured share must be latency-invariant while
the pool-generation wall-clock visibly tracks the access link — both
asserted below. Each point's full ScenarioSpec lands in the JSON
export.
"""

from repro.analysis.model import required_corrupted_resolvers
from repro.campaign import CampaignRunner, ParameterGrid, spec_trial
from repro.scenarios.presets import e2_grid_base_spec

from benchmarks.conftest import CACHE_DIR, JOURNAL_DIR, run_once

TRIALS = 3          # independent world seeds per grid point

#: Access-link latencies swept as a LinkSpec axis (metro vs long-haul).
LATENCIES = (0.003, 0.030)

# The canonical base spec lives in the preset registry (shared with the
# --smoke grid and examples): a 40-server pool with an explicit
# ResolverSpec and access LinkSpec so every swept path has a concrete
# node to land on.
BASE_SPEC = e2_grid_base_spec()

GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"provider.count": (3, 5, 9),
     "provider.corrupted": range(10),
     "network.access.latency": LATENCIES},
    name="e2_required_fraction",
).where(lambda p: p["provider.corrupted"] <= p["provider.count"])

RUNNER = CampaignRunner(spec_trial, trials_per_point=TRIALS,
                        base_seed=200, cache_dir=CACHE_DIR,
                        journal_dir=JOURNAL_DIR)

SMOKE_GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"provider.count": (3,),
     "provider.corrupted": (0, 1, 2, 3),
     "network.access.latency": (0.003,)},
    name="e2_required_fraction_smoke",
)

SMOKE_RUNNER = CampaignRunner(spec_trial, base_seed=200,
                              cache_dir=CACHE_DIR)


def bench_e2_required_fraction(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "e2_required_fraction.json")

    rows = []
    for summary in result.summaries:
        n = summary.params["provider.count"]
        corrupted = summary.params["provider.corrupted"]
        latency = summary.params["network.access.latency"]
        share = summary["attacker_share"]
        needed_for_majority = required_corrupted_resolvers(n, 0.5)
        rows.append([
            n, corrupted,
            f"{latency * 1000:.0f} ms",
            f"{share.mean:.3f}",
            f"±{(share.ci_high - share.ci_low) / 2:.3f}",
            f"{corrupted / n:.3f}",
            f"{summary['elapsed'].mean * 1000:.0f} ms",
            "yes" if share.mean > 0.5 else "no",
            needed_for_majority,
        ])
    emit_table(
        "e2_required_fraction",
        f"E2 / §III-a: attacker pool share vs corrupted resolvers "
        f"({result.summaries[0]['attacker_share'].count} trials/point, "
        f"grid-over-spec)",
        ["N", "corrupted", "access", "measured share", "95% CI",
         "closed form c/N", "gen time", "majority?", "⌈N/2⌉ needed"],
        rows,
        notes="Measured share equals c/N exactly (Algorithm 1's bound) in "
              "every trial and at every access latency — corruption is a "
              "combinatorial property, so the LinkSpec axis moves only "
              "the generation wall-clock; majority is reached only at "
              "c ≥ ⌈N/2⌉ — the paper's x ≥ y.")

    for summary in result.summaries:
        n = summary.params["provider.count"]
        corrupted = summary.params["provider.corrupted"]
        fraction = summary["attacker_share"].mean
        assert abs(fraction - corrupted / n) < 1e-9
        if fraction > 0.5:
            assert corrupted >= required_corrupted_resolvers(n, 0.5)

    if not smoke:
        # The LinkSpec axis moves wall-clock, never the bound: the same
        # (N, corrupted) point generates slower over the long-haul
        # access link but yields the identical attacker share.
        slow, fast = max(LATENCIES), min(LATENCIES)
        for n in (3, 5, 9):
            shares = {
                latency: result.metric("attacker_share", **{
                    "provider.count": n, "provider.corrupted": 1,
                    "network.access.latency": latency}).mean
                for latency in LATENCIES
            }
            assert shares[slow] == shares[fast] == 1 / n
            assert result.metric("elapsed", **{
                "provider.count": n, "provider.corrupted": 1,
                "network.access.latency": slow}).mean > result.metric(
                "elapsed", **{
                    "provider.count": n, "provider.corrupted": 1,
                    "network.access.latency": fast}).mean
