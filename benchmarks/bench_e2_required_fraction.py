"""E2 — §III-a: the attacker needs x ≥ y of the resolvers.

Claim reproduced: with Algorithm 1, corrupting ``c`` of ``N`` resolvers
yields *exactly* a fraction c/N of the generated pool, so controlling a
fraction y of the pool requires ⌈yN⌉ corrupted resolvers — measured
end-to-end with real compromised providers, and cross-checked against
the closed form.

Declared as a campaign grid: one axis sweep over (N, corrupted) with the
dependent range expressed as a ``where`` clause, executed end-to-end by
the shared :func:`repro.campaign.pool_attack_trial`.
"""

from repro.analysis.model import required_corrupted_resolvers
from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial

from benchmarks.conftest import CACHE_DIR, run_once

FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

TRIALS = 3          # independent world seeds per grid point

GRID = ParameterGrid(
    {"num_providers": (3, 5, 9), "corrupted": range(10)},
    fixed={"pool_size": 40, "answers_per_query": 4, "forged": FORGED},
    name="e2_required_fraction",
).where(lambda p: p["corrupted"] <= p["num_providers"])

RUNNER = CampaignRunner(pool_attack_trial, trials_per_point=TRIALS,
                        base_seed=200, cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid(
    {"num_providers": (3,), "corrupted": (0, 1, 2, 3)},
    fixed={"pool_size": 40, "answers_per_query": 4, "forged": FORGED},
    name="e2_required_fraction_smoke",
)

SMOKE_RUNNER = CampaignRunner(pool_attack_trial, base_seed=200,
                              cache_dir=CACHE_DIR)


def bench_e2_required_fraction(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "e2_required_fraction.json")

    rows = []
    for summary in result.summaries:
        n = summary.params["num_providers"]
        corrupted = summary.params["corrupted"]
        share = summary["attacker_share"]
        needed_for_majority = required_corrupted_resolvers(n, 0.5)
        rows.append([
            n, corrupted,
            f"{share.mean:.3f}",
            f"±{(share.ci_high - share.ci_low) / 2:.3f}",
            f"{corrupted / n:.3f}",
            "yes" if share.mean > 0.5 else "no",
            needed_for_majority,
        ])
    emit_table(
        "e2_required_fraction",
        f"E2 / §III-a: attacker pool share vs corrupted resolvers "
        f"({result.summaries[0]['attacker_share'].count} trials/point)",
        ["N", "corrupted", "measured share", "95% CI", "closed form c/N",
         "majority?", "⌈N/2⌉ needed"],
        rows,
        notes="Measured share equals c/N exactly (Algorithm 1's bound) in "
              "every trial — the CI half-width is zero; majority is "
              "reached only at c ≥ ⌈N/2⌉ — the paper's x ≥ y.")

    for summary in result.summaries:
        n = summary.params["num_providers"]
        corrupted = summary.params["corrupted"]
        fraction = summary["attacker_share"].mean
        assert abs(fraction - corrupted / n) < 1e-9
        if fraction > 0.5:
            assert corrupted >= required_corrupted_resolvers(n, 0.5)
