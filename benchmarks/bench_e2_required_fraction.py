"""E2 — §III-a: the attacker needs x ≥ y of the resolvers.

Claim reproduced: with Algorithm 1, corrupting ``c`` of ``N`` resolvers
yields *exactly* a fraction c/N of the generated pool, so controlling a
fraction y of the pool requires ⌈yN⌉ corrupted resolvers — measured
end-to-end with real compromised providers, and cross-checked against
the closed form.

Declared as a campaign grid: one axis sweep over (N, corrupted) with the
dependent range expressed as a ``where`` clause, executed end-to-end by
the shared :func:`repro.campaign.pool_attack_trial`.
"""

from repro.analysis.model import required_corrupted_resolvers
from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial

from benchmarks.conftest import RESULTS_DIR, run_once

FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

GRID = ParameterGrid(
    {"num_providers": (3, 5, 9), "corrupted": range(10)},
    fixed={"pool_size": 40, "answers_per_query": 4, "forged": FORGED},
    name="e2_required_fraction",
).where(lambda p: p["corrupted"] <= p["num_providers"])

RUNNER = CampaignRunner(pool_attack_trial, base_seed=200)


def bench_e2_required_fraction(benchmark, emit_table):
    result = run_once(benchmark, lambda: RUNNER.run(GRID))
    result.write_json(RESULTS_DIR / "e2_required_fraction.json")

    rows = []
    for summary in result.summaries:
        n = summary.params["num_providers"]
        corrupted = summary.params["corrupted"]
        fraction = summary["attacker_share"].mean
        needed_for_majority = required_corrupted_resolvers(n, 0.5)
        rows.append([
            n, corrupted,
            f"{fraction:.3f}",
            f"{corrupted / n:.3f}",
            "yes" if fraction > 0.5 else "no",
            needed_for_majority,
        ])
    emit_table(
        "e2_required_fraction",
        "E2 / §III-a: attacker pool share vs corrupted resolvers",
        ["N", "corrupted", "measured share", "closed form c/N",
         "majority?", "⌈N/2⌉ needed"],
        rows,
        notes="Measured share equals c/N exactly (Algorithm 1's bound); "
              "majority is reached only at c ≥ ⌈N/2⌉ — the paper's x ≥ y.")

    for summary in result.summaries:
        n = summary.params["num_providers"]
        corrupted = summary.params["corrupted"]
        fraction = summary["attacker_share"].mean
        assert abs(fraction - corrupted / n) < 1e-9
        if fraction > 0.5:
            assert corrupted >= required_corrupted_resolvers(n, 0.5)
