"""C1 — chaos timelines: outage fraction × quorum, and MTTR vs duration.

The robustness experiment the chaos layer exists for: client
populations keep acquiring pools and syncing while a scheduled
:class:`~repro.chaos.ServerOutage` crashes a fraction of the DoH
providers mid-run, and the graceful-degradation question is whether the
E6 quorum extension (``fleet.min_answers``) buys availability the
paper's strict all-must-answer combination gives up.

Claims measured:

* at every outage fraction, quorum availability is at least strict
  availability — a client that accepts any single provider's answers
  rides out outages that starve the all-must-answer policy;
* mean time-to-recovery is non-decreasing in the outage duration (the
  population cannot recover before the failure window closes);
* chaos worlds keep campaign determinism: serial and process-pool
  executions of the same chaos grid produce bit-identical records
  (telemetry snapshots included).
"""

import dataclasses

from repro.campaign import CampaignRunner, ParameterGrid, chaos_trial
from repro.chaos import ChaosSpec, ServerOutage
from repro.scenarios.spec import population_spec

from benchmarks.conftest import CACHE_DIR, JOURNAL_DIR, run_once

TRIALS = 3

#: Fraction of the 3 providers the outage crashes (ceil of
#: fraction * 3): none, one, two.
FRACTIONS = (0.0, 0.3, 0.6)

#: ``None`` is the paper's strict all-must-answer combination; 1 is the
#: most permissive E6 quorum.
QUORUMS = (None, 1)

#: Outage durations for the MTTR monotonicity sweep, spanning one to
#: several availability bins (``telemetry.time_bin`` = 10 s).
DURATIONS = (10.0, 30.0, 60.0)


def _chaos_spec(num_clients: int, rounds: int, fraction: float,
                duration: float):
    """A population spec with one provider-scope outage window."""
    return dataclasses.replace(
        population_spec(num_clients=num_clients, rounds=rounds),
        chaos=ChaosSpec(events=(
            ServerOutage(scope="providers", fraction=fraction,
                         at=10.0, duration=duration),)))


BASE_SPEC = _chaos_spec(num_clients=24, rounds=5, fraction=FRACTIONS[-1],
                        duration=30.0)

GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"chaos.events[0].fraction": FRACTIONS,
     "fleet.min_answers": QUORUMS},
    name="c1_chaos",
)

RUNNER = CampaignRunner(chaos_trial, trials_per_point=TRIALS,
                        base_seed=930, cache_dir=CACHE_DIR,
                        journal_dir=JOURNAL_DIR)

SMOKE_BASE = _chaos_spec(num_clients=8, rounds=4, fraction=FRACTIONS[-1],
                         duration=30.0)

SMOKE_GRID = ParameterGrid.over_spec(
    SMOKE_BASE,
    {"chaos.events[0].fraction": (0.0, 0.6),
     "fleet.min_answers": QUORUMS},
    name="c1_chaos_smoke",
)

SMOKE_RUNNER = CampaignRunner(chaos_trial, base_seed=930,
                              cache_dir=CACHE_DIR)

MTTR_GRID = ParameterGrid.over_spec(
    _chaos_spec(num_clients=12, rounds=6, fraction=0.6, duration=30.0),
    {"chaos.events[0].duration": DURATIONS},
    name="c1_mttr",
)

MTTR_RUNNER = CampaignRunner(chaos_trial, trials_per_point=TRIALS,
                             base_seed=931, cache_dir=CACHE_DIR,
                             journal_dir=JOURNAL_DIR)

MTTR_SMOKE_GRID = ParameterGrid.over_spec(
    _chaos_spec(num_clients=6, rounds=5, fraction=0.6, duration=30.0),
    {"chaos.events[0].duration": (10.0, 60.0)},
    name="c1_mttr_smoke",
)

MTTR_SMOKE_RUNNER = CampaignRunner(chaos_trial, base_seed=931,
                                   cache_dir=CACHE_DIR)

#: Tiny uncached grid for the serial==parallel identity check (cached
#: replays would make the comparison vacuous).
IDENTITY_GRID = ParameterGrid.over_spec(
    _chaos_spec(num_clients=6, rounds=3, fraction=0.6, duration=20.0),
    {"chaos.events[0].fraction": (0.3, 0.6)},
    name="c1_identity",
)


def bench_c1_chaos(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "c1_chaos.json")

    rows = []
    for summary in result.summaries:
        quorum = summary.params["fleet.min_answers"]
        rows.append([
            f"{summary.params['chaos.events[0].fraction']:.1f}",
            "strict" if quorum is None else f"quorum {quorum}",
            f"{summary['availability'].mean:.3f}",
            f"{summary['availability_floor'].mean:.2f}",
            f"{summary['mttr'].mean:.0f} s",
            f"{summary['chaos_events'].mean:.0f}",
        ])
    emit_table(
        "c1_chaos",
        f"C1: availability under scheduled provider outages "
        f"({result.summaries[0]['availability'].count} trials/point)",
        ["outage fraction", "policy", "availability", "floor", "MTTR",
         "events"],
        rows,
        notes="A provider-scope outage crashes ceil(fraction * N) DoH "
              "providers for the window; the strict all-must-answer "
              "policy fails every resolve touching a downed provider, "
              "while a 1-answer quorum degrades gracefully.")

    fractions = sorted({s.params["chaos.events[0].fraction"]
                        for s in result.summaries})
    # Quorum availability dominates strict at every outage point: a
    # policy that needs fewer answers can only fail less often.
    for fraction in fractions:
        strict = result.metric("availability", **{
            "chaos.events[0].fraction": fraction,
            "fleet.min_answers": None}).mean
        quorum = result.metric("availability", **{
            "chaos.events[0].fraction": fraction,
            "fleet.min_answers": 1}).mean
        assert quorum >= strict - 1e-9, (
            f"fraction {fraction}: quorum availability {quorum} fell "
            f"below strict {strict}")
    # Chaos actually bites: at the largest outage the strict policy
    # loses availability relative to the chaos-free point.
    baseline = result.metric("availability", **{
        "chaos.events[0].fraction": fractions[0],
        "fleet.min_answers": None}).mean
    worst = result.metric("availability", **{
        "chaos.events[0].fraction": fractions[-1],
        "fleet.min_answers": None}).mean
    assert worst < baseline, (
        f"outage fraction {fractions[-1]} did not dent strict "
        f"availability ({worst} vs chaos-free {baseline})")

    # --- MTTR vs outage duration ------------------------------------
    mttr_grid, mttr_runner = ((MTTR_SMOKE_GRID, MTTR_SMOKE_RUNNER) if smoke
                              else (MTTR_GRID, MTTR_RUNNER))
    mttr = mttr_runner.run(mttr_grid)
    mttr.write_json(results_dir / "c1_mttr.json")
    durations = sorted({s.params["chaos.events[0].duration"]
                        for s in mttr.summaries})
    measured = [mttr.metric("mttr", **{
        "chaos.events[0].duration": duration}).mean
        for duration in durations]
    assert all(a <= b + 1e-9 for a, b in zip(measured, measured[1:])), (
        f"MTTR must be non-decreasing in outage duration, got "
        f"{dict(zip(durations, measured))}")
    emit_table(
        "c1_mttr",
        f"C1: time-to-recovery vs outage duration "
        f"({mttr.summaries[0]['mttr'].count} trials/point)",
        ["outage duration", "MTTR", "availability"],
        [[f"{duration:.0f} s",
          f"{mttr.metric('mttr', **{'chaos.events[0].duration': duration}).mean:.0f} s",
          f"{mttr.metric('availability', **{'chaos.events[0].duration': duration}).mean:.3f}"]
         for duration in durations],
        notes="Recovery is the first pop.availability bin at or above "
              "0.99 after the failure window closes, measured from the "
              "event start — the population cannot recover before the "
              "outage ends, so MTTR tracks duration.")

    # --- serial == parallel bit-identity ----------------------------
    serial = CampaignRunner(chaos_trial, base_seed=932,
                            executor="serial").run(IDENTITY_GRID)
    parallel = CampaignRunner(chaos_trial, base_seed=932,
                              executor="processes",
                              workers=2).run(IDENTITY_GRID)
    assert serial.records == parallel.records, (
        "chaos campaign records must be executor-invariant")
