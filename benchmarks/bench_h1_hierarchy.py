"""H1 — iterative resolution: cache TTL × spray rate exposure sweeps.

The hierarchy experiment the resolution-tree axis exists for: client
populations resolve ``pool.ntp.org`` through providers whose recursors
walk a real root→TLD→authoritative referral chain with TTL caching,
while an off-path attacker sprays forged responses at provider 0.

Claims measured:

* every cache expiry re-opens a resolution window an off-path forgery
  can race — so shortening the pool TTL multiplies the attacker's
  opportunities (``windows_per_hour`` rises as ``pool.ttl`` falls);
* at a fixed TTL, hijack probability is non-decreasing in the spray
  rate, and a successful poisoning converts directly into NTP clients
  synchronising against attacker servers (``victim_fraction``);
* the §III-a corruption bound survives the deeper tree: E2's measured
  attacker share over the 2-level hierarchy stays within 0.05 of the
  flat-chain closed form c/N, and E8's per-address majority vote still
  strips a 1-of-3 minority attacker;
* campaign determinism holds for hierarchy worlds: serial and
  process-pool executions of the same grid produce bit-identical
  records (telemetry snapshots included);
* the iterative fleet stays within 2x of the committed forwarding
  fleet throughput (full runs only, measured against
  ``BENCH_netsim.json``).
"""

import gc
import json
import time
from pathlib import Path

from repro.campaign import (
    CampaignRunner,
    ParameterGrid,
    hierarchy_trial,
    spec_trial,
)
from repro.scenarios import materialize, set_path
from repro.scenarios.presets import (
    hierarchy_population_spec,
    hierarchy_spec,
)

from benchmarks.conftest import CACHE_DIR, JOURNAL_DIR, run_once

FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

TRIALS = 3

#: The exposure axes: cache lifetime of the pool records × attacker
#: spray rate (bursts/s).  TTLs span "expires every round" to "outlives
#: the whole run".
TTLS = (15, 60, 240)
RATES = (2.0, 8.0)

BASE_SPEC = hierarchy_population_spec(
    num_clients=40, rounds=3, spray_rate=RATES[0], spray_duration=60.0)

GRID = ParameterGrid.over_spec(
    BASE_SPEC,
    {"pool.ttl": TTLS, "attacks[0].rate": RATES},
    name="h1_hierarchy",
)

RUNNER = CampaignRunner(hierarchy_trial, trials_per_point=TRIALS,
                        base_seed=900, cache_dir=CACHE_DIR,
                        journal_dir=JOURNAL_DIR)

SMOKE_BASE = hierarchy_population_spec(
    num_clients=8, rounds=2, spray_rate=RATES[0], spray_duration=40.0)

SMOKE_GRID = ParameterGrid.over_spec(
    SMOKE_BASE,
    {"pool.ttl": (15, 60), "attacks[0].rate": (8.0,)},
    name="h1_hierarchy_smoke",
)

SMOKE_RUNNER = CampaignRunner(hierarchy_trial, base_seed=900,
                              cache_dir=CACHE_DIR)

# E2 re-run over the hierarchy: same corruption axis, single-client
# Algorithm 1 worlds whose resolvers recurse through the tree.
E2H_BASE = set_path(hierarchy_spec(pool_size=40, answers_per_query=4),
                    "provider.forged", FORGED)

# pool.size 40 is E2's shape; pool.size 4 makes every benign answer
# the whole pool, so the E8 vote check has guaranteed overlap (at 40,
# rotation hands the three providers near-disjoint windows and the
# vote is legitimately empty).
E2H_GRID = ParameterGrid.over_spec(
    E2H_BASE, {"provider.corrupted": (0, 1, 2, 3), "pool.size": (4, 40)},
    name="h1_e2_hierarchy",
)

E2H_RUNNER = CampaignRunner(spec_trial, trials_per_point=TRIALS,
                            base_seed=910, cache_dir=CACHE_DIR,
                            journal_dir=JOURNAL_DIR)

E2H_SMOKE_GRID = ParameterGrid.over_spec(
    E2H_BASE, {"provider.corrupted": (0, 1), "pool.size": (4,)},
    name="h1_e2_hierarchy_smoke",
)

E2H_SMOKE_RUNNER = CampaignRunner(spec_trial, base_seed=910,
                                  cache_dir=CACHE_DIR)

#: Tiny uncached grid for the serial==parallel identity check (cached
#: replays would make the comparison vacuous).
IDENTITY_GRID = ParameterGrid.over_spec(
    hierarchy_population_spec(num_clients=6, rounds=2, spray_rate=4.0,
                              spray_duration=30.0),
    {"pool.ttl": (15, 60)},
    name="h1_identity",
)

#: Full iterative runs may not fall below this fraction of the
#: committed forwarding-fleet throughput (BENCH_netsim.json).
PERF_FLOOR_FRACTION = 0.5

_BENCH_NETSIM = Path(__file__).parent.parent / "BENCH_netsim.json"


def _fleet_rounds_per_s(clients: int, rounds: int) -> float:
    world = materialize(
        hierarchy_population_spec(num_clients=clients, rounds=rounds),
        42)
    gc.collect()
    started = time.perf_counter()
    outcomes = world.run()
    return outcomes.rounds / (time.perf_counter() - started)


def bench_h1_hierarchy(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "h1_hierarchy.json")

    rows = []
    for summary in result.summaries:
        hit_ratio = summary["cache_hits"].mean / max(
            summary["cache_hits"].mean + summary["cache_misses"].mean, 1.0)
        rows.append([
            summary.params["pool.ttl"],
            f"{summary.params['attacks[0].rate']:.0f}/s",
            f"{summary['windows_per_hour'].mean:.0f}",
            f"{summary['exposure_open_s'].mean:.2f} s",
            f"{hit_ratio:.0%}",
            f"{summary['spray_packets'].mean:.0f}",
            f"{summary['hijacked'].mean:.2f}",
            f"{summary['victim_fraction'].mean:.2f}",
        ])
    emit_table(
        "h1_hierarchy",
        f"H1: poisoning exposure over the root→TLD→authoritative chain "
        f"({result.summaries[0]['hijacked'].count} trials/point)",
        ["pool TTL", "spray", "windows/h", "open time", "cache hit",
         "packets", "P[hijack]", "victim fraction"],
        rows,
        notes="Each cache expiry re-opens an upstream resolution the "
              "off-path sprayer can race; shorter TTLs multiply "
              "windows/hour, and an accepted forgery at provider 0 "
              "turns into NTP syncs against attacker servers.")

    rates = sorted({s.params["attacks[0].rate"] for s in result.summaries})
    ttls = sorted({s.params["pool.ttl"] for s in result.summaries})
    # Shorter TTL -> strictly more exposure windows per hour, at every
    # spray rate (deterministic: windows are cache-miss counts).
    for rate in rates:
        per_ttl = {
            ttl: result.metric("windows_per_hour", **{
                "pool.ttl": ttl, "attacks[0].rate": rate}).mean
            for ttl in ttls}
        assert per_ttl[min(ttls)] > per_ttl[max(ttls)], (
            f"rate {rate}: windows/hour must rise as TTL falls, "
            f"got {per_ttl}")
    # Hijack probability is non-decreasing in the spray rate at fixed
    # TTL (lenient: means over few trials).
    for ttl in ttls:
        hijack = [result.metric("hijacked", **{
            "pool.ttl": ttl, "attacks[0].rate": rate}).mean
            for rate in rates]
        assert all(a <= b + 1e-9 for a, b in zip(hijack, hijack[1:])), (
            f"ttl {ttl}: P[hijack] must be non-decreasing in spray "
            f"rate, got {dict(zip(rates, hijack))}")
    # A hijack is never free: every point reports attacker spend.
    for summary in result.summaries:
        if summary["hijacked"].mean > 0:
            assert summary["spray_packets"].mean > 0

    # --- E2 + E8 over the hierarchy ---------------------------------
    e2_grid, e2_runner = ((E2H_SMOKE_GRID, E2H_SMOKE_RUNNER) if smoke
                          else (E2H_GRID, E2H_RUNNER))
    e2 = e2_runner.run(e2_grid)
    e2.write_json(results_dir / "h1_e2_hierarchy.json")
    e2_rows = []
    for summary in e2.summaries:
        c = summary.params["provider.corrupted"]
        pool_size = summary.params["pool.size"]
        share = summary["attacker_share"].mean
        e2_rows.append([c, pool_size, f"{share:.3f}", f"{c / 3:.3f}",
                        f"{summary['voted_attacker_share'].mean:.3f}",
                        f"{summary['voted_size'].mean:.1f}"])
        # The corruption bound is combinatorial; the deeper resolution
        # tree must not move it beyond the acceptance tolerance.
        assert abs(share - c / 3) <= 0.05, (
            f"hierarchy E2 drifted from the flat-chain bound: "
            f"share {share} vs c/N {c / 3}")
        # E8: the per-address vote never includes the minority
        # attacker; with full answer overlap (pool 4) it must also
        # retain the benign pool.
        if c == 1:
            assert summary["voted_attacker_share"].mean == 0.0
            if pool_size == 4:
                assert summary["voted_size"].mean > 0
    emit_table(
        "h1_e2_hierarchy",
        f"H1/E2: attacker share over the 2-level hierarchy, N=3 "
        f"({e2.summaries[0]['attacker_share'].count} trials/point)",
        ["corrupted", "pool", "measured share", "flat-chain c/N",
         "voted share", "voted size"],
        e2_rows,
        notes="Algorithm 1's c/N bound and the E8 majority vote are "
              "combinatorial properties of the answer sets — walking "
              "real referral chains (with caching) must not move "
              "either.")

    # --- serial == parallel bit-identity ----------------------------
    serial = CampaignRunner(hierarchy_trial, base_seed=920,
                            executor="serial").run(IDENTITY_GRID)
    parallel = CampaignRunner(hierarchy_trial, base_seed=920,
                              executor="processes",
                              workers=2).run(IDENTITY_GRID)
    assert serial.records == parallel.records, (
        "hierarchy campaign records must be executor-invariant")

    # --- fleet throughput floor (full runs only) --------------------
    if not smoke:
        committed = json.loads(_BENCH_NETSIM.read_text())
        reference = committed["current"]["fleet_rounds_per_s"]
        measured = _fleet_rounds_per_s(clients=1000, rounds=3)
        floor = reference * PERF_FLOOR_FRACTION
        print(f"\nh1 fleet throughput: {measured:.1f} rounds/s iterative "
              f"vs {reference} committed forwarding "
              f"(floor {floor:.1f})")
        assert measured >= floor, (
            f"iterative fleet too slow: {measured:.1f} rounds/s < "
            f"{PERF_FLOOR_FRACTION:.0%} of committed forwarding "
            f"throughput {reference}")
