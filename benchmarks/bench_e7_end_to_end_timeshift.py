"""E7 — §I/§V: the end-to-end time-shift attack, four configurations.

Claim reproduced: "using our proposal mitigates the off-path attacks
against plain NTP as well as against Chronos enhanced NTP [1]". One
attacker (on-path at the client edge + 1 of 3 DoH providers) attacks a
client under {plain DNS, distributed DoH} x {naive SNTP, Chronos}, over
several seeds. Expected shape: plain-DNS rows shifted by the full lie
regardless of Chronos; DoH+Chronos unshifted; DoH+naive partially
shifted (the §IV point that both layers are needed).

Declared as a campaign grid whose axis is the configuration name; each
trial runs one configuration in a fresh world via the shared
:func:`repro.campaign.timeshift_trial` (trials_per_point = seeds).
"""

from repro.campaign import CampaignRunner, ParameterGrid, timeshift_trial

from benchmarks.conftest import CACHE_DIR, run_once

LIE = 10.0
TRIALS = 3          # independent world seeds per configuration
CONFIGURATIONS = ("plain-dns+naive-sntp", "plain-dns+chronos",
                  "distributed-doh+naive-sntp", "distributed-doh+chronos")

GRID = ParameterGrid(
    {"configuration": CONFIGURATIONS},
    fixed={"lie_offset": LIE, "num_providers": 3, "corrupted_providers": 1},
    name="e7_end_to_end_timeshift",
)

RUNNER = CampaignRunner(timeshift_trial, trials_per_point=TRIALS,
                        base_seed=700, cache_dir=CACHE_DIR)

SMOKE_GRID = ParameterGrid(
    {"configuration": ("plain-dns+chronos", "distributed-doh+chronos")},
    fixed={"lie_offset": LIE, "num_providers": 3, "corrupted_providers": 1},
    name="e7_end_to_end_timeshift_smoke",
)

SMOKE_RUNNER = CampaignRunner(timeshift_trial, base_seed=700,
                              cache_dir=CACHE_DIR)


def bench_e7_end_to_end_timeshift(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "e7_end_to_end_timeshift.json")

    rows = []
    for summary in result.summaries:
        shifted = summary["shifted"]
        rows.append([
            summary.params["configuration"],
            f"{summary['pool_malicious_fraction'].mean:.0%}",
            f"{summary['abs_clock_error'].mean:.3f} s",
            f"{round(shifted.mean * shifted.count)}/{shifted.count}",
        ])
    emit_table(
        "e7_end_to_end_timeshift",
        f"E7 / §I,§V: clock error under a {LIE:.0f}s time-shift attack "
        f"({result.summaries[0]['shifted'].count} seeds)",
        ["configuration", "pool poisoned", "mean |clock error|",
         "runs shifted"],
        rows,
        notes="Plain DNS falls fully (even with Chronos — this is [1]); "
              "Algorithm 1 caps the poisoned fraction at 1/3; the "
              "Chronos+distributed-DoH tandem keeps correct time (§IV).")

    plain_chronos = result.summary(configuration="plain-dns+chronos")
    assert plain_chronos["shifted"].mean == 1.0
    assert plain_chronos["pool_malicious_fraction"].mean == 1.0
    doh_chronos = result.summary(configuration="distributed-doh+chronos")
    assert doh_chronos["shifted"].mean == 0.0
    assert abs(doh_chronos["pool_malicious_fraction"].mean - 1 / 3) < 0.01
