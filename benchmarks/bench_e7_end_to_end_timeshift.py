"""E7 — §I/§V: the end-to-end time-shift attack, four configurations.

Claim reproduced: "using our proposal mitigates the off-path attacks
against plain NTP as well as against Chronos enhanced NTP [1]". One
attacker (on-path at the client edge + 1 of 3 DoH providers) attacks a
client under {plain DNS, distributed DoH} x {naive SNTP, Chronos}, over
several seeds. Expected shape: plain-DNS rows shifted by the full lie
regardless of Chronos; DoH+Chronos unshifted; DoH+naive partially
shifted (the §IV point that both layers are needed).
"""

from repro.attacks.timeshift import TimeShiftExperiment
from repro.util.stats import mean

from benchmarks.conftest import run_once

SEEDS = [7, 8, 9]
LIE = 10.0


def sweep():
    per_config = {}
    for seed in SEEDS:
        experiment = TimeShiftExperiment(seed=seed, lie_offset=LIE,
                                         num_providers=3,
                                         corrupted_providers=1)
        for result in experiment.run_all():
            per_config.setdefault(result.configuration, []).append(result)
    return per_config


def bench_e7_end_to_end_timeshift(benchmark, emit_table):
    per_config = run_once(benchmark, sweep)

    rows = []
    order = ["plain-dns+naive-sntp", "plain-dns+chronos",
             "distributed-doh+naive-sntp", "distributed-doh+chronos"]
    for name in order:
        results = per_config[name]
        errors = [abs(r.clock_error_after) for r in results]
        poisoned = [r.pool_malicious_fraction for r in results]
        shifted = sum(1 for r in results if r.shifted)
        rows.append([
            name,
            f"{mean(poisoned):.0%}",
            f"{mean(errors):.3f} s",
            f"{shifted}/{len(results)}",
        ])
    emit_table(
        "e7_end_to_end_timeshift",
        f"E7 / §I,§V: clock error under a {LIE:.0f}s time-shift attack "
        f"({len(SEEDS)} seeds)",
        ["configuration", "pool poisoned", "mean |clock error|",
         "runs shifted"],
        rows,
        notes="Plain DNS falls fully (even with Chronos — this is [1]); "
              "Algorithm 1 caps the poisoned fraction at 1/3; the "
              "Chronos+distributed-DoH tandem keeps correct time (§IV).")

    for result in per_config["plain-dns+chronos"]:
        assert result.shifted
        assert result.pool_malicious_fraction == 1.0
    for result in per_config["distributed-doh+chronos"]:
        assert not result.shifted
        assert abs(result.pool_malicious_fraction - 1 / 3) < 0.01
