"""E1 — Figure 1, end to end.

Paper anchor: Fig. 1 (system overview). The claim reproduced: the whole
pipeline works — a client queries pool.ntp.org through three distributed
DoH resolvers (steps 1-2), each resolver recurses to the c/d/e.ntpns.org
nameservers (steps 3-4), the answers are combined (step 5) and the
resulting pool drives a successful Chronos synchronisation.
"""

from repro.ntp.chronos import ChronosClient, ChronosConfig
from repro.ntp.client import NtpClient
from repro.ntp.clock import SimClock
from repro.ntp.pool import deploy_ntp_fleet
from repro.scenarios import figure1_scenario

from benchmarks.conftest import run_once


def run_figure1():
    scenario = figure1_scenario(seed=1)
    fleet = deploy_ntp_fleet(scenario.internet, scenario.directory,
                             scenario.rng)
    pool = scenario.generate_pool_sync()
    clock = SimClock(lambda: scenario.simulator.now, offset=0.080)
    ntp_client = NtpClient(scenario.client, scenario.simulator, clock)
    chronos = ChronosClient(ntp_client, pool.addresses,
                            config=ChronosConfig(sample_size=9,
                                                 agreement_window=0.060,
                                                 min_responses=5),
                            rng=scenario.rng.stream("bench-chronos"))
    outcomes = []
    chronos.sync(outcomes.append)
    scenario.simulator.run()
    return scenario, pool, clock, outcomes[0]


def bench_e1_system_overview(benchmark, emit_table):
    scenario, pool, clock, sync = run_once(benchmark, run_figure1)

    rows = []
    for answer in pool.answers:
        rows.append([
            answer.resolver.name,
            len(answer.addresses),
            pool.truncate_length,
            f"{answer.outcome.latency * 1000:.1f} ms",
        ])
    rows.append(["(combined pool)", len(pool.addresses), "-",
                 f"{pool.elapsed * 1000:.1f} ms"])
    emit_table(
        "e1_system_overview",
        "E1 / Fig.1: distributed DoH pool generation feeding Chronos",
        ["resolver", "answers", "K (truncated)", "latency"],
        rows,
        notes=(f"benign fraction: "
               f"{scenario.directory.benign_fraction(pool.addresses):.0%}; "
               f"Chronos: {sync.status.value}, clock error after sync "
               f"{clock.error() * 1000:+.1f} ms (was +80.0 ms)"))

    assert pool.ok
    assert sync.ok
    assert abs(clock.error()) < 0.030
