"""E1 — Figure 1, end to end.

Paper anchor: Fig. 1 (system overview). The claim reproduced: the whole
pipeline works — a client queries pool.ntp.org through three distributed
DoH resolvers (steps 1-2), each resolver recurses to the c/d/e.ntpns.org
nameservers (steps 3-4), the answers are combined (step 5) and the
resulting pool drives a successful Chronos synchronisation.

Declared as a (single-point) campaign grid over the ``figure1`` preset;
the shared :func:`repro.campaign.figure1_system_trial` reports the
per-resolver answer/latency breakdown the Figure 1 table shows.
"""

from repro.campaign import CampaignRunner, ParameterGrid, figure1_system_trial

from benchmarks.conftest import CACHE_DIR, run_once

GRID = ParameterGrid(
    {"preset": ("figure1",)},
    name="e1_system_overview",
)

RUNNER = CampaignRunner(figure1_system_trial, base_seed=100,
                        cache_dir=CACHE_DIR)


def bench_e1_system_overview(benchmark, emit_table, smoke, results_dir):
    result = run_once(benchmark, lambda: RUNNER.run(GRID))
    result.write_json(results_dir / "e1_system_overview.json")

    summary = result.summaries[0]
    resolver_names = [key[len("answers["):-1] for key in summary.metrics
                      if key.startswith("answers[")]
    rows = []
    for name in resolver_names:
        rows.append([
            name,
            round(summary[f"answers[{name}]"].mean),
            round(summary["truncate_length"].mean),
            f"{summary[f'latency[{name}]'].mean * 1000:.1f} ms",
        ])
    rows.append(["(combined pool)", round(summary["pool_size"].mean), "-",
                 f"{summary['elapsed'].mean * 1000:.1f} ms"])
    emit_table(
        "e1_system_overview",
        "E1 / Fig.1: distributed DoH pool generation feeding Chronos",
        ["resolver", "answers", "K (truncated)", "latency"],
        rows,
        notes=(f"benign fraction: {summary['benign_fraction'].mean:.0%}; "
               f"Chronos: "
               f"{'ok' if summary['chronos_ok'].mean == 1.0 else 'failed'}, "
               f"clock error after sync "
               f"{summary['clock_error'].mean * 1000:+.1f} ms (was "
               f"{summary['clock_error_before'].mean * 1000:+.1f} ms)"))

    assert summary["pool_size"].mean > 0           # pool.ok
    assert summary["chronos_ok"].mean == 1.0       # sync.ok
    assert abs(summary["clock_error"].mean) < 0.030
