"""E3 — §III-b: attack success probability is p^⌈xN⌉.

Claim reproduced: the closed-form attack probability (paper model and
exact binomial tail) against the Monte-Carlo estimate, including the
paper's worked example — "even when only 3 DoH resolvers are used ...
a malicious majority (x ≥ 2/3) is reduced significantly (p²)".

Declared as a campaign over an explicit (N, x, p) point list; the
Monte-Carlo runs through the engine as independently seeded chunks whose
aggregate reconstructs the pooled estimate.
"""

from repro.analysis.model import (
    attack_probability_exact,
    attack_probability_paper,
)
from repro.analysis.montecarlo import MonteCarloResult
from repro.campaign import (
    CampaignRunner,
    ParameterGrid,
    attack_probability_trial,
)

from benchmarks.conftest import CACHE_DIR, JOURNAL_DIR, run_once

POINTS = [
    (3, 2 / 3, 0.10),   # the paper's example: p^2 = 0.01
    (3, 2 / 3, 0.30),
    (3, 2 / 3, 0.50),
    (5, 0.5, 0.10),
    (5, 0.5, 0.30),
    (9, 0.5, 0.10),
    (9, 0.5, 0.30),
    (15, 0.5, 0.30),
    (31, 0.5, 0.30),
]

CHUNK = 500          # coin-flip trials per campaign trial
CHUNKS = 40          # campaign trials per grid point
TRIALS = CHUNK * CHUNKS

GRID = ParameterGrid.from_points(
    [{"n": n, "x": x, "p_attack": p} for n, x, p in POINTS],
    fixed={"chunk": CHUNK},
    name="e3_attack_probability",
)

RUNNER = CampaignRunner(attack_probability_trial, trials_per_point=CHUNKS,
                        base_seed=3, cache_dir=CACHE_DIR,
                        journal_dir=JOURNAL_DIR)

SMOKE_GRID = ParameterGrid.from_points(
    [{"n": n, "x": x, "p_attack": p} for n, x, p in POINTS[:3]],
    fixed={"chunk": CHUNK},
    name="e3_attack_probability_smoke",
)

SMOKE_RUNNER = CampaignRunner(attack_probability_trial, trials_per_point=8,
                              base_seed=3, cache_dir=CACHE_DIR)


def bench_e3_attack_probability(benchmark, emit_table, smoke, results_dir):
    grid, runner = (SMOKE_GRID, SMOKE_RUNNER) if smoke else (GRID, RUNNER)
    result = run_once(benchmark, lambda: runner.run(grid))
    result.write_json(results_dir / "e3_attack_probability.json")

    rows = []
    for summary in result.summaries:
        n, x, p = (summary.params["n"], summary.params["x"],
                   summary.params["p_attack"])
        success = summary["success"]
        mc = MonteCarloResult.from_chunk_means(success.mean, success.stderr,
                                               success.count, CHUNK)
        rows.append((n, x, p, attack_probability_paper(n, x, p),
                     attack_probability_exact(n, x, p), mc))

    table_rows = [
        [n, f"{x:.2f}", f"{p:.2f}", f"{paper:.2e}", f"{exact:.2e}",
         f"{mc.estimate:.4f} ± {mc.standard_error:.4f}"]
        for n, x, p, paper, exact, mc in rows
    ]
    emit_table(
        "e3_attack_probability",
        f"E3 / §III-b: attack probability, closed forms vs Monte-Carlo "
        f"({rows[0][5].trials} trials)",
        ["N", "x", "p_attack", "paper p^⌈xN⌉", "exact P[Bin≥M]",
         "Monte-Carlo"],
        table_rows,
        notes="The MC estimate matches the exact binomial tail; the "
              "paper's p^M is its single-set term (dominant for small p, "
              "short by the C(N,M) choice factor otherwise).")

    for n, x, p, paper, exact, mc in rows:
        assert mc.within(exact), (n, x, p)
        assert exact >= paper - 1e-12
    # The worked example from the paper.
    assert attack_probability_paper(3, 2 / 3, 0.1) == 0.1 ** 2
