"""E3 — §III-b: attack success probability is p^⌈xN⌉.

Claim reproduced: the closed-form attack probability (paper model and
exact binomial tail) against the Monte-Carlo estimate, including the
paper's worked example — "even when only 3 DoH resolvers are used ...
a malicious majority (x ≥ 2/3) is reduced significantly (p²)".
"""

from repro.analysis.model import (
    attack_probability_exact,
    attack_probability_paper,
)
from repro.analysis.montecarlo import simulate_attack_probability

from benchmarks.conftest import run_once

GRID = [
    (3, 2 / 3, 0.10),   # the paper's example: p^2 = 0.01
    (3, 2 / 3, 0.30),
    (3, 2 / 3, 0.50),
    (5, 0.5, 0.10),
    (5, 0.5, 0.30),
    (9, 0.5, 0.10),
    (9, 0.5, 0.30),
    (15, 0.5, 0.30),
    (31, 0.5, 0.30),
]

TRIALS = 20_000


def compute():
    rows = []
    for n, x, p in GRID:
        paper = attack_probability_paper(n, x, p)
        exact = attack_probability_exact(n, x, p)
        mc = simulate_attack_probability(n, x, p, trials=TRIALS, seed=3)
        rows.append((n, x, p, paper, exact, mc))
    return rows


def bench_e3_attack_probability(benchmark, emit_table):
    rows = run_once(benchmark, compute)

    table_rows = [
        [n, f"{x:.2f}", f"{p:.2f}", f"{paper:.2e}", f"{exact:.2e}",
         f"{mc.estimate:.4f} ± {mc.standard_error:.4f}"]
        for n, x, p, paper, exact, mc in rows
    ]
    emit_table(
        "e3_attack_probability",
        f"E3 / §III-b: attack probability, closed forms vs Monte-Carlo "
        f"({TRIALS} trials)",
        ["N", "x", "p_attack", "paper p^⌈xN⌉", "exact P[Bin≥M]",
         "Monte-Carlo"],
        table_rows,
        notes="The MC estimate matches the exact binomial tail; the "
              "paper's p^M is its single-set term (dominant for small p, "
              "short by the C(N,M) choice factor otherwise).")

    for n, x, p, paper, exact, mc in rows:
        assert mc.within(exact), (n, x, p)
        assert exact >= paper - 1e-12
    # The worked example from the paper.
    assert attack_probability_paper(3, 2 / 3, 0.1) == 0.1 ** 2
