"""E8 — §II: the per-address majority vote.

Claim reproduced: "Ensuring that all of the servers in a returned DNS
query are benign can be performed via a classic majority-vote on each of
the returned addresses." With a minority of resolvers poisoned,
truncate-and-combine yields a pool that is 1/N attacker-controlled,
while the majority vote yields an *all-benign* (but smaller) pool — the
availability/strength trade-off, including its interaction with answer
rotation (heavy rotation starves the vote of overlap).
"""

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.core.majority import MajorityVoteCombiner
from repro.netsim.address import IPAddress
from repro.scenarios import build_pool_scenario

from benchmarks.conftest import run_once

FORGED = [f"203.0.113.{i + 1}" for i in range(4)]


def run_case(pool_size: int, seed: int):
    """Small pool => heavy answer overlap; large pool => rotation."""
    scenario = build_pool_scenario(seed=seed, num_providers=3,
                                   pool_size=pool_size, answers_per_query=4)
    corrupt_first_k(scenario.providers, 1, CompromiseConfig(
        target=scenario.pool_domain,
        behavior=CompromisedResolverBehavior.SUBSTITUTE,
        forged_addresses=FORGED))
    pool = scenario.generate_pool_sync()
    forged_set = {IPAddress(a) for a in FORGED}

    combined_share = (sum(1 for a in pool.addresses if a in forged_set)
                      / len(pool.addresses))
    voted = MajorityVoteCombiner().combine(pool.contributions)
    voted_share = (sum(1 for a in voted if a in forged_set) / len(voted)
                   if voted else 0.0)
    return pool, combined_share, voted, voted_share


def sweep():
    return {pool_size: run_case(pool_size, seed=500 + pool_size)
            for pool_size in (4, 8, 20, 60)}


def bench_e8_majority_vote(benchmark, emit_table):
    cases = run_once(benchmark, sweep)

    rows = []
    for pool_size, (pool, combined_share, voted, voted_share) in cases.items():
        rows.append([
            pool_size,
            len(pool.addresses), f"{combined_share:.0%}",
            len(voted), f"{voted_share:.0%}",
        ])
    emit_table(
        "e8_majority_vote",
        "E8 / §II: truncate-combine vs per-address majority vote "
        "(1 of 3 resolvers substituting)",
        ["pool population", "combined size", "combined attacker share",
         "voted size", "voted attacker share"],
        rows,
        notes="The vote removes every attacker address (needs 2 of 3 "
              "votes; the lone corrupted resolver never wins) but its "
              "output shrinks as rotation reduces overlap between honest "
              "answers — why Chronos, which tolerates a minority, "
              "doesn't need it.")

    for pool_size, (pool, combined_share, voted, voted_share) in cases.items():
        assert abs(combined_share - 1 / 3) < 1e-9
        assert voted_share == 0.0  # soundness of the vote
    # Overlap economics: tiny population => the vote keeps everything.
    assert len(cases[4][2]) == 4
    # Heavy rotation => fewer (possibly zero) quorum winners.
    assert len(cases[60][2]) <= len(cases[4][2])
