"""E8 — §II: the per-address majority vote.

Claim reproduced: "Ensuring that all of the servers in a returned DNS
query are benign can be performed via a classic majority-vote on each of
the returned addresses." With a minority of resolvers poisoned,
truncate-and-combine yields a pool that is 1/N attacker-controlled,
while the majority vote yields an *all-benign* (but smaller) pool — the
availability/strength trade-off, including its interaction with answer
rotation (heavy rotation starves the vote of overlap).

Declared as a campaign grid over the pool population; the shared
:func:`repro.campaign.pool_attack_trial` reports both the combined pool
and the per-address vote for every point. The voted pool size is the
one genuinely noisy metric here (rotation overlap varies per world), so
the full run samples it adaptively: every point gets at least
``TRIALS`` trials, and points whose 95% CI on ``voted_size`` is still
wider than ±0.5 addresses keep earning deterministically-seeded extras up
to ``MAX_TRIALS``.
"""

from repro.campaign import (
    AdaptiveSampling,
    CampaignRunner,
    ParameterGrid,
    pool_attack_trial,
)

from benchmarks.conftest import CACHE_DIR, JOURNAL_DIR, run_once

FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

TRIALS = 5          # floor: rotation overlap varies per world
MAX_TRIALS = 12     # adaptive budget for high-variance points

GRID = ParameterGrid(
    {"pool_size": (4, 8, 20, 60)},
    fixed={"num_providers": 3, "answers_per_query": 4, "corrupted": 1,
           "forged": FORGED},
    name="e8_majority_vote",
)

RUNNER = CampaignRunner(pool_attack_trial, trials_per_point=TRIALS,
                        base_seed=500, cache_dir=CACHE_DIR,
                        journal_dir=JOURNAL_DIR,
                        adaptive=AdaptiveSampling(max_trials=MAX_TRIALS,
                                                  ci_width=1.0,
                                                  metric="voted_size"))

SMOKE_RUNNER = CampaignRunner(pool_attack_trial, base_seed=500,
                              cache_dir=CACHE_DIR)


def bench_e8_majority_vote(benchmark, emit_table, smoke, results_dir):
    runner = SMOKE_RUNNER if smoke else RUNNER
    result = run_once(benchmark, lambda: runner.run(GRID))
    result.write_json(results_dir / "e8_majority_vote.json")

    rows = []
    for summary in result.summaries:
        voted = summary["voted_size"]
        rows.append([
            summary.params["pool_size"],
            round(summary["pool_size"].mean),
            f"{summary['attacker_share'].mean:.0%}",
            f"{voted.mean:.1f}",
            f"±{(voted.ci_high - voted.ci_low) / 2:.1f}",
            voted.count,
            f"{summary['voted_attacker_share'].mean:.0%}",
        ])
    counts = sorted({s["voted_size"].count for s in result.summaries})
    trials_label = (f"{counts[0]} trials/point" if len(counts) == 1 else
                    f"{counts[0]}-{counts[-1]} trials/point, CI-targeted")
    emit_table(
        "e8_majority_vote",
        f"E8 / §II: truncate-combine vs per-address majority vote "
        f"(1 of 3 resolvers substituting, {trials_label})",
        ["pool population", "combined size", "combined attacker share",
         "voted size", "95% CI", "trials", "voted attacker share"],
        rows,
        notes="The vote removes every attacker address (needs 2 of 3 "
              "votes; the lone corrupted resolver never wins) but its "
              "output shrinks as rotation reduces overlap between honest "
              "answers — why Chronos, which tolerates a minority, "
              "doesn't need it.")

    for summary in result.summaries:
        assert abs(summary["attacker_share"].mean - 1 / 3) < 1e-9
        assert summary["voted_attacker_share"].mean == 0.0  # vote soundness
    # Overlap economics: tiny population => the vote keeps everything.
    assert result.metric("voted_size", pool_size=4).mean == 4
    # Heavy rotation => fewer (possibly zero) quorum winners.
    assert (result.metric("voted_size", pool_size=60).mean
            <= result.metric("voted_size", pool_size=4).mean)
