"""E9 — §II fn.1: dual-stack honest-majority semantics.

Claim reproduced: "If dual-stack operation needs to be supported, it
depends on the application whether the property of a honest majority of
servers needs to be fulfilled for the union of A and AAAA records or
for both sets individually."

Attack: one of three resolvers poisons *only AAAA* (it owns no IPv4
servers). Under UNION semantics the poison is diluted across the
combined pool; under PER_FAMILY it concentrates in the v6 pool — the
application must pick the semantics matching how it consumes addresses.

Declared as a campaign grid whose axis is the dual-stack policy family;
the shared trial reports per-family attacker shares directly.
"""

from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial
from repro.core.policy import DualStackPolicy

from benchmarks.conftest import CACHE_DIR, run_once

FORGED_V6 = tuple(f"2001:db8:bad::{i + 1:x}" for i in range(3))

TRIALS = 5          # independent world seeds per policy

GRID = ParameterGrid(
    {"policy": (DualStackPolicy.UNION, DualStackPolicy.PER_FAMILY)},
    fixed={"num_providers": 3, "pool_size": 12, "answers_per_query": 3,
           "dual_stack": True, "corrupted": 1, "forged": FORGED_V6},
    name="e9_dual_stack",
)

RUNNER = CampaignRunner(pool_attack_trial, trials_per_point=TRIALS,
                        base_seed=600, cache_dir=CACHE_DIR)

SMOKE_RUNNER = CampaignRunner(pool_attack_trial, base_seed=600,
                              cache_dir=CACHE_DIR)


def bench_e9_dual_stack(benchmark, emit_table, smoke, results_dir):
    runner = SMOKE_RUNNER if smoke else RUNNER
    result = run_once(benchmark, lambda: runner.run(GRID))
    result.write_json(results_dir / "e9_dual_stack.json")

    rows = []
    for summary in result.summaries:
        share = summary["attacker_share"]
        rows.append([
            summary.params["policy"].value,
            round(summary["pool_size"].mean),
            f"{share.mean:.0%}",
            f"±{(share.ci_high - share.ci_low) / 2:.1%}",
            f"{summary['v4_share'].mean:.0%}",
            f"{summary['v6_share'].mean:.0%}",
        ])
    emit_table(
        "e9_dual_stack",
        f"E9 / §II fn.1: AAAA-only poisoning by 1 of 3 resolvers "
        f"({result.summaries[0]['attacker_share'].count} trials/point)",
        ["dual-stack policy", "pool size", "attacker share (union)",
         "95% CI", "share in v4", "share in v6"],
        rows,
        notes="UNION dilutes the single-family poison below the 1/3 "
              "resolver bound; PER_FAMILY confines it to the v6 pool at "
              "exactly 1/3 — an app using only v6 addresses must demand "
              "the per-family guarantee, as the footnote warns.")

    union = result.summary(policy=DualStackPolicy.UNION)
    per_family = result.summary(policy=DualStackPolicy.PER_FAMILY)
    assert union["attacker_share"].mean <= 1 / 3 + 1e-9
    assert per_family["v4_share"].mean == 0.0
    assert abs(per_family["v6_share"].mean - 1 / 3) < 1e-9
