"""E9 — §II fn.1: dual-stack honest-majority semantics.

Claim reproduced: "If dual-stack operation needs to be supported, it
depends on the application whether the property of a honest majority of
servers needs to be fulfilled for the union of A and AAAA records or
for both sets individually."

Attack: one of three resolvers poisons *only AAAA* (it owns no IPv4
servers). Under UNION semantics the poison is diluted across the
combined pool; under PER_FAMILY it concentrates in the v6 pool — the
application must pick the semantics matching how it consumes addresses.
"""

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.core.policy import DualStackPolicy
from repro.core.pool import PoolGeneratorConfig
from repro.netsim.address import IPAddress
from repro.scenarios import build_pool_scenario

from benchmarks.conftest import run_once

FORGED_V6 = [f"2001:db8:bad::{i + 1:x}" for i in range(3)]


def run_case(policy: DualStackPolicy, seed: int):
    scenario = build_pool_scenario(seed=seed, num_providers=3,
                                   pool_size=12, answers_per_query=3,
                                   dual_stack=True)
    corrupt_first_k(scenario.providers, 1, CompromiseConfig(
        target=scenario.pool_domain,
        behavior=CompromisedResolverBehavior.SUBSTITUTE,
        forged_addresses=FORGED_V6))
    config = PoolGeneratorConfig(dual_stack=policy)
    pool = scenario.generate_pool_sync(scenario.make_generator(config=config))
    forged_set = {IPAddress(a) for a in FORGED_V6}

    def share(addresses):
        if not addresses:
            return 0.0
        return sum(1 for a in addresses if a in forged_set) / len(addresses)

    v4 = [a for a in pool.addresses if a.family == 4]
    v6 = [a for a in pool.addresses if a.family == 6]
    return pool, share(pool.addresses), share(v4), share(v6)


def bench_e9_dual_stack(benchmark, emit_table):
    results = run_once(benchmark, lambda: {
        policy: run_case(policy, seed=600)
        for policy in (DualStackPolicy.UNION, DualStackPolicy.PER_FAMILY)
    })

    rows = []
    for policy, (pool, union_share, v4_share, v6_share) in results.items():
        rows.append([
            policy.value, len(pool.addresses),
            f"{union_share:.0%}", f"{v4_share:.0%}", f"{v6_share:.0%}",
        ])
    emit_table(
        "e9_dual_stack",
        "E9 / §II fn.1: AAAA-only poisoning by 1 of 3 resolvers",
        ["dual-stack policy", "pool size", "attacker share (union)",
         "share in v4", "share in v6"],
        rows,
        notes="UNION dilutes the single-family poison below the 1/3 "
              "resolver bound; PER_FAMILY confines it to the v6 pool at "
              "exactly 1/3 — an app using only v6 addresses must demand "
              "the per-family guarantee, as the footnote warns.")

    union_pool, union_share, _, union_v6 = results[DualStackPolicy.UNION]
    per_pool, per_share, per_v4, per_v6 = results[DualStackPolicy.PER_FAMILY]
    assert union_share <= 1 / 3 + 1e-9
    assert per_v4 == 0.0
    assert abs(per_v6 - 1 / 3) < 1e-9
