"""Tests for the pool directory workload model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.dns.rrtype import RRType
from repro.scenarios.workload import PoolDirectory


def make_directory(benign=8, malicious=0, per_query=4, seed=1):
    return PoolDirectory(
        benign=[f"172.16.0.{i + 1}" for i in range(benign)],
        malicious=[f"203.0.113.{i + 1}" for i in range(malicious)],
        answers_per_query=per_query,
        rng=random.Random(seed))


class TestMembership:
    def test_counts(self):
        directory = make_directory(benign=5, malicious=2)
        assert len(directory.benign) == 5
        assert len(directory.malicious) == 2
        assert len(directory.members) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PoolDirectory(benign=[], malicious=[])

    def test_is_benign(self):
        directory = make_directory(benign=2, malicious=1)
        assert directory.is_benign("172.16.0.1")
        assert not directory.is_benign("203.0.113.1")
        assert not directory.is_benign("9.9.9.9")

    def test_enroll_malicious(self):
        directory = make_directory()
        directory.enroll_malicious("203.0.113.99")
        assert not directory.is_benign("203.0.113.99")
        assert len(directory.malicious) == 1


class TestBenignFraction:
    def test_all_benign(self):
        directory = make_directory()
        assert directory.benign_fraction(["172.16.0.1", "172.16.0.2"]) == 1.0

    def test_mixed(self):
        directory = make_directory(malicious=2)
        fraction = directory.benign_fraction(
            ["172.16.0.1", "203.0.113.1"])
        assert fraction == 0.5

    def test_duplicates_count_individually(self):
        """§IV: repeated addresses are individual servers."""
        directory = make_directory(malicious=1)
        fraction = directory.benign_fraction(
            ["172.16.0.1", "172.16.0.1", "172.16.0.1", "203.0.113.1"])
        assert fraction == 0.75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_directory().benign_fraction([])


class TestSampling:
    def test_sample_size(self):
        directory = make_directory(benign=10, per_query=4)
        assert len(directory.sample()) == 4

    def test_sample_capped_at_population(self):
        directory = make_directory(benign=2, per_query=4)
        assert len(directory.sample()) == 2

    def test_sample_no_duplicates_within_one_answer(self):
        directory = make_directory(benign=10, per_query=4)
        for _ in range(20):
            sample = directory.sample()
            assert len(set(sample)) == len(sample)

    def test_family_filter(self):
        directory = PoolDirectory(
            benign=["172.16.0.1", "fd00::1", "fd00::2"],
            answers_per_query=4, rng=random.Random(0))
        v4 = directory.sample(family=4)
        v6 = directory.sample(family=6)
        assert all(a.family == 4 for a in v4)
        assert all(a.family == 6 for a in v6)
        assert directory.sample(family=6) != []

    def test_family_filter_empty(self):
        directory = make_directory()
        assert directory.sample(family=6) == []

    def test_rotation_varies(self):
        directory = make_directory(benign=20, per_query=4, seed=3)
        samples = {tuple(sorted(str(a) for a in directory.sample()))
                   for _ in range(10)}
        assert len(samples) > 1


class TestSamplingDeterminism:
    """Regression: rotation must be a pure function of the injected rng.

    The campaign engine's reproducibility guarantee rests on this — a
    scenario rebuilt from the same seed must serve bit-identical DNS
    rotations.
    """

    def make_dual_stack(self, seed):
        return PoolDirectory(
            benign=[f"172.16.0.{i + 1}" for i in range(12)]
                   + [f"fd00::{i + 1:x}" for i in range(12)],
            malicious=["203.0.113.1", "2001:db8:bad::1"],
            answers_per_query=4, rng=random.Random(seed))

    @pytest.mark.parametrize("family", [4, 6, None])
    def test_same_rng_same_rotation_sequence(self, family):
        first = self.make_dual_stack(seed=1234)
        second = self.make_dual_stack(seed=1234)
        for _ in range(50):
            assert first.sample(family=family) == second.sample(family=family)

    def test_different_rng_diverges(self):
        first = self.make_dual_stack(seed=1)
        second = self.make_dual_stack(seed=2)
        rotations_first = [tuple(first.sample(family=4)) for _ in range(10)]
        rotations_second = [tuple(second.sample(family=4)) for _ in range(10)]
        assert rotations_first != rotations_second

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.sampled_from([4, 6, None]))
    def test_never_duplicates_within_one_rotation(self, seed, family):
        directory = self.make_dual_stack(seed=seed)
        for _ in range(10):
            rotation = directory.sample(family=family)
            assert len(set(rotation)) == len(rotation)
            if family is not None:
                assert all(a.family == family for a in rotation)

    def test_interleaved_family_queries_stay_deterministic(self):
        """Alternating A/AAAA rotations must replay identically too —
        the per-family streams share one rng, so ordering matters."""
        first = self.make_dual_stack(seed=77)
        second = self.make_dual_stack(seed=77)
        sequence = [4, 6, 6, 4, None, 6, 4, None]
        for family in sequence:
            assert first.sample(family=family) == second.sample(family=family)


class TestRecordProvider:
    def test_provider_returns_a_rdata(self):
        directory = make_directory()
        provider = directory.record_provider(family=4)
        records = provider()
        assert len(records) == 4
        assert all(r.rrtype is RRType.A for r in records)

    def test_provider_counts_queries(self):
        directory = make_directory()
        provider = directory.record_provider()
        provider()
        provider()
        assert directory.queries_answered == 2

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=10))
    def test_provider_size_property(self, population, per_query):
        directory = PoolDirectory(
            benign=[f"172.16.1.{i + 1}" for i in range(population)],
            answers_per_query=per_query, rng=random.Random(0))
        records = directory.record_provider()()
        assert len(records) == min(per_query, population)
