"""Tests for scenario assembly and presets."""

import pytest

from repro.dns.rrtype import RRType
from repro.doh.providers import synthetic_profiles
from repro.scenarios import (
    build_pool_scenario,
    figure1_scenario,
    large_scale_scenario,
    lossy_network_scenario,
)


class TestBuildPoolScenario:
    def test_default_three_named_providers(self):
        scenario = build_pool_scenario(seed=1)
        assert [p.name for p in scenario.providers] == [
            "dns.google", "cloudflare-dns.com", "dns.quad9.net"]

    def test_synthetic_providers_beyond_three(self):
        scenario = build_pool_scenario(seed=1, num_providers=6)
        assert len(scenario.providers) == 6
        assert scenario.providers[3].name.startswith("doh")

    def test_unique_provider_addresses(self):
        scenario = build_pool_scenario(seed=1, num_providers=10)
        addresses = {str(p.address) for p in scenario.providers}
        assert len(addresses) == 10

    def test_zero_providers_rejected(self):
        with pytest.raises(ValueError):
            build_pool_scenario(num_providers=0)

    def test_profile_count_mismatch_rejected(self):
        from repro.doh.providers import GOOGLE
        with pytest.raises(ValueError):
            build_pool_scenario(num_providers=2, profiles=[GOOGLE])

    def test_directory_size(self):
        scenario = build_pool_scenario(seed=1, pool_size=33)
        assert len(scenario.directory.benign) == 33

    def test_dual_stack_directory(self):
        scenario = build_pool_scenario(seed=1, pool_size=10, dual_stack=True)
        families = {a.family for a in scenario.directory.benign}
        assert families == {4, 6}

    def test_deterministic_same_seed(self):
        a = build_pool_scenario(seed=9).generate_pool_sync()
        b = build_pool_scenario(seed=9).generate_pool_sync()
        assert [str(x) for x in a.addresses] == [str(x) for x in b.addresses]

    def test_different_seeds_differ(self):
        a = build_pool_scenario(seed=9).generate_pool_sync()
        b = build_pool_scenario(seed=10).generate_pool_sync()
        assert [str(x) for x in a.addresses] != [str(x) for x in b.addresses]

    def test_every_region_reachable(self):
        scenario = build_pool_scenario(seed=1)
        topology = scenario.internet.topology
        for node in topology.nodes:
            topology.route("client-edge", node)  # must not raise

    def test_make_resolver_set(self):
        scenario = build_pool_scenario(seed=1)
        resolver_set = scenario.make_resolver_set(2 / 3)
        assert len(resolver_set) == 3
        assert resolver_set.assumed_secure_fraction == 2 / 3

    def test_generate_pool_sync_runs_once(self):
        scenario = build_pool_scenario(seed=1)
        pool = scenario.generate_pool_sync()
        assert pool.ok


class TestPresets:
    def test_figure1(self):
        scenario = figure1_scenario(seed=4)
        assert len(scenario.providers) == 3
        pool = scenario.generate_pool_sync()
        assert len(pool.addresses) == 12

    def test_large_scale(self):
        scenario = large_scale_scenario(num_providers=7, seed=4)
        pool = scenario.generate_pool_sync()
        assert len(pool.contributions) == 7

    def test_lossy_network_still_succeeds(self):
        scenario = lossy_network_scenario(loss=0.10, seed=4)
        generator = scenario.make_generator(timeout=5.0, retries=8)
        pool = scenario.generate_pool_sync(generator)
        # With enough transport retries, moderate loss must not break
        # Algorithm 1 (each retry is an independent ~66% success draw).
        assert pool.ok


class TestSyntheticProfiles:
    def test_count(self):
        assert len(synthetic_profiles(25, ["a", "b"])) == 25

    def test_unique_names_and_addresses(self):
        profiles = synthetic_profiles(300, ["a"])
        assert len({p.name for p in profiles}) == 300
        assert len({p.address for p in profiles}) == 300

    def test_round_robin_regions(self):
        profiles = synthetic_profiles(4, ["r1", "r2"])
        assert [p.region for p in profiles] == ["r1", "r2", "r1", "r2"]

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_profiles(0, ["a"])
        with pytest.raises(ValueError):
            synthetic_profiles(3, [])
