"""Tests for the declarative scenario spec layer.

Round-trip exactness, dotted-path access, shim equivalence (legacy
keyword builders == spec-built worlds for the same seeds), the attack
registry, and the spec-only fleet extensions (per-region access edges,
DoH transport, plain-DNS provider serving).
"""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, UnknownPresetError
from repro.scenarios import build_pool_scenario, build_population_scenario
from repro.scenarios.presets import (
    SPEC_PRESETS,
    degraded_network_scenario,
    e2_grid_base_spec,
    get_preset,
    get_spec_preset,
    hierarchy_population_spec,
    hierarchy_spec,
)
from repro.scenarios.spec import (
    RESOLVER_MODES,
    AttackSpec,
    HierarchySpec,
    FaultSpec,
    FleetSpec,
    LinkSpec,
    NetworkSpec,
    PoolSpec,
    ProfileSpec,
    ProviderSpec,
    RegionSpec,
    ResolverSpec,
    ScenarioSpec,
    TelemetrySpec,
    get_path,
    materialize,
    pool_spec,
    population_spec,
    set_path,
)


def shim(builder, *args, **kwargs):
    """Call a deprecated builder with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return builder(*args, **kwargs)


# ----------------------------------------------------------------------
# Round-trip serialization.
# ----------------------------------------------------------------------

probabilities = st.floats(0.0, 1.0, allow_nan=False)
small_floats = st.floats(0.0, 10.0, allow_nan=False)

link_specs = st.builds(LinkSpec, latency=small_floats, jitter=small_floats,
                       loss=probabilities)
fault_specs = st.builds(FaultSpec, loss_rate=probabilities,
                        jitter_s=small_floats, reorder_window=small_floats,
                        reorder_rate=probabilities,
                        duplicate_rate=probabilities,
                        duplicate_gap_s=small_floats)
region_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])
region_specs = st.builds(RegionSpec, name=region_names,
                         attach=st.sampled_from(["eu-central", "us-east"]),
                         link=link_specs,
                         fault=st.none() | fault_specs)
network_specs = st.builds(
    NetworkSpec,
    access=st.none() | link_specs,
    fault=fault_specs,
    extra_fault=st.none() | fault_specs,
    regions=st.lists(region_specs, max_size=3,
                     unique_by=lambda r: r.name).map(tuple))
provider_specs = st.builds(
    ProviderSpec,
    count=st.integers(1, 6),
    resolver=st.none() | st.builds(ResolverSpec,
                                   query_timeout=st.floats(0.1, 5.0),
                                   max_retries_per_server=st.integers(0, 4),
                                   txid_bits=st.integers(1, 16)),
    # serve="dns" is only legal alongside a udp fleet; the explicit
    # round-trip tests cover it, the random scenarios stay on "doh".
    serve=st.just("doh"),
    corrupted=st.just(0),
    behavior=st.sampled_from(["substitute", "inflate", "empty", "truthful"]),
    forged=st.lists(st.sampled_from(["203.0.113.7", "203.0.113.9"]),
                    max_size=2, unique=True).map(tuple))
pool_specs = st.builds(PoolSpec, size=st.integers(1, 50),
                       answers_per_query=st.integers(1, 6),
                       ttl=st.integers(1, 600),
                       dual_stack=st.booleans(),
                       truncation=st.sampled_from(["shortest", "median",
                                                   "none"]),
                       min_answers=st.none() | st.integers(1, 3))
fleet_specs = st.builds(FleetSpec, size=st.integers(1, 500),
                        rounds=st.integers(1, 5),
                        arrival=st.sampled_from(["periodic", "poisson"]),
                        churn_rate=probabilities,
                        transport=st.just("udp"))
attack_specs = st.builds(
    lambda kind, forged: AttackSpec.of(kind, forged=forged),
    kind=st.sampled_from(["mitm", "compromise", "timeshift"]),
    forged=st.lists(st.sampled_from(["203.0.113.31", "203.0.113.32"]),
                    min_size=1, max_size=2, unique=True).map(tuple))
scenario_specs = st.builds(
    ScenarioSpec,
    network=network_specs,
    provider=provider_specs,
    pool=pool_specs,
    fleet=st.none() | fleet_specs,
    attacks=st.lists(attack_specs, max_size=2).map(tuple),
    telemetry=st.builds(TelemetrySpec,
                        enabled=st.none() | st.booleans(),
                        time_bin=st.floats(0.5, 60.0)))


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(scenario_specs)
    def test_dict_and_json_round_trip_exactly(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        # The canonical JSON itself is stable through a parse cycle.
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_every_spec_type_round_trips(self):
        for spec in (LinkSpec(latency=0.02), FaultSpec(loss_rate=0.3),
                     RegionSpec(name="eu", fault=FaultSpec(jitter_s=0.1)),
                     NetworkSpec(regions=(RegionSpec(name="x"),)),
                     ProfileSpec("dns.example", "us-east", "10.54.0.9"),
                     ResolverSpec(query_timeout=1.0),
                     ProviderSpec(count=4, corrupted=2,
                                  forged=("203.0.113.1",)),
                     PoolSpec(min_answers=2), FleetSpec(size=7),
                     AttackSpec.of("mitm", mode="empty"),
                     TelemetrySpec(enabled=True)):
            assert type(spec).from_dict(spec.to_dict()) == spec

    def test_to_json_is_byte_stable(self):
        spec = population_spec(num_clients=12, corrupted=1)
        assert spec.to_json() == population_spec(num_clients=12,
                                                 corrupted=1).to_json()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            FleetSpec.from_dict({"size": 3, "num_clientz": 5})

    def test_legacy_converters_round_trip(self):
        for spec in (pool_spec(num_providers=5, loss_rate=0.2,
                               dual_stack=True),
                     population_spec(num_clients=9, corrupted=2,
                                     behavior="empty", churn_rate=0.1),
                     set_path(population_spec(), "provider.serve", "dns")):
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestValidation:
    def test_corrupted_beyond_count_rejected(self):
        with pytest.raises(ValueError, match="corrupted"):
            population_spec(corrupted=4, num_providers=3)

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError):
            population_spec(corrupted=1, behavior="explode")

    def test_min_answers_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="min_answers"):
            population_spec(min_answers=4, num_providers=3)

    def test_doh_fleet_needs_doh_providers(self):
        spec = set_path(population_spec(), "fleet.transport", "doh")
        with pytest.raises(ConfigurationError, match="doh"):
            set_path(spec, "provider.serve", "dns")

    def test_single_client_world_needs_doh_serving(self):
        # A single-client sweep over serve="dns" must fail at spec
        # construction, not mid-campaign at the first trial.
        with pytest.raises(ConfigurationError, match="single-client"):
            set_path(pool_spec(), "provider.serve", "dns")

    def test_unknown_attack_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown attack"):
            AttackSpec.of("teleport")

    def test_duplicate_region_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            NetworkSpec(regions=(RegionSpec(name="a"), RegionSpec(name="a")))


class TestDottedPaths:
    def test_get_and_set_scalar(self):
        spec = population_spec()
        assert get_path(spec, "fleet.size") == 50
        bigger = set_path(spec, "fleet.size", 300)
        assert get_path(bigger, "fleet.size") == 300
        assert get_path(spec, "fleet.size") == 50   # original untouched

    def test_indexed_path(self):
        spec = set_path(pool_spec(), "network.regions",
                        (RegionSpec(name="a"), RegionSpec(name="b")))
        lossy = set_path(spec, "network.regions[1].link.loss", 0.25)
        assert get_path(lossy, "network.regions[1].link.loss") == 0.25
        assert get_path(lossy, "network.regions[0].link.loss") == 0.0

    def test_whole_subtree_replacement(self):
        spec = set_path(pool_spec(), "network.fault",
                        FaultSpec(loss_rate=0.5))
        assert spec.network.fault.loss_rate == 0.5

    def test_bad_paths_raise(self):
        spec = pool_spec()
        with pytest.raises(ConfigurationError, match="no"):
            get_path(spec, "fleet.size")       # fleet is None
        with pytest.raises(ConfigurationError):
            set_path(spec, "provider.quorum", 2)
        with pytest.raises(ConfigurationError, match="out of range"):
            set_path(spec, "network.regions[0].link.loss", 0.1)
        with pytest.raises(ConfigurationError, match="malformed"):
            get_path(spec, "provider..count")


class TestShimEquivalence:
    def test_pool_builder_matches_spec_world(self):
        legacy = shim(build_pool_scenario, seed=9, num_providers=3,
                      loss_rate=0.1).generate_pool_sync()
        fresh = materialize(pool_spec(num_providers=3, loss_rate=0.1),
                            9).generate_pool_sync()
        assert legacy.addresses == fresh.addresses
        assert legacy.elapsed == fresh.elapsed
        assert legacy.truncate_length == fresh.truncate_length

    def test_population_builder_matches_spec_world(self):
        legacy = shim(build_population_scenario, seed=21, num_clients=25,
                      corrupted=1, churn_rate=0.1, rounds=2).run()
        fresh = materialize(population_spec(num_clients=25, corrupted=1,
                                            churn_rate=0.1, rounds=2),
                            21).run()
        assert legacy == fresh   # whole PopulationOutcomes dataclass

    def test_degraded_preset_matches_spec_world(self):
        a = degraded_network_scenario(loss_rate=0.2,
                                      seed=5).generate_pool_sync()
        b = degraded_network_scenario(loss_rate=0.2,
                                      seed=5).generate_pool_sync()
        assert (a.ok, a.addresses, a.elapsed) == (b.ok, b.addresses,
                                                  b.elapsed)

    def test_builders_warn(self):
        with pytest.warns(DeprecationWarning):
            build_pool_scenario(seed=1)


class TestMaterializeExtensions:
    def test_plain_dns_serving_mode(self):
        spec = set_path(population_spec(num_clients=8, rounds=2,
                                        corrupted=1),
                        "provider.serve", "dns")
        world = materialize(spec, 13)
        assert all(d.doh_server is None for d in world.pool.providers)
        outcomes = world.run()
        assert outcomes.rounds == 16
        assert outcomes.victim_fraction > 0.0   # corruption still bites

    def test_doh_fleet_transport(self):
        spec = set_path(population_spec(num_clients=6, rounds=2),
                        "fleet.transport", "doh")
        world = materialize(spec, 17)
        outcomes = world.run()
        assert outcomes.rounds == 12
        assert outcomes.availability == 1.0
        # Clients really rode DoH: per-query TLS exchanges in telemetry.
        assert world.telemetry.value("doh.queries") == 6 * 2 * 3

    def test_doh_fleet_sees_provider_corruption(self):
        spec = set_path(population_spec(num_clients=10, rounds=2,
                                        corrupted=3),
                        "fleet.transport", "doh")
        outcomes = materialize(spec, 19).run()
        assert outcomes.victim_fraction == 1.0

    def test_per_region_fleet_with_heterogeneous_links(self):
        regions = (RegionSpec(name="eu", attach="eu-central",
                              link=LinkSpec(latency=0.002)),
                   RegionSpec(name="asia", attach="asia-east",
                              link=LinkSpec(latency=0.040),
                              fault=FaultSpec(loss_rate=0.4)))
        spec = set_path(population_spec(num_clients=10, rounds=2),
                        "network.regions", regions)
        world = materialize(spec, 23)
        topology = world.internet.topology
        assert topology.link_between("pop-edge-eu", "eu-central") is not None
        assert topology.link_between("pop-edge-asia",
                                     "asia-east").fault is not None
        outcomes = world.run()
        # The lossy region costs some rounds; the clean one does not.
        assert outcomes.rounds == 20

    def test_onpath_attack_installer_victimises_covered_region(self):
        regions = (RegionSpec(name="eu", attach="eu-central"),
                   RegionSpec(name="us", attach="us-east"))
        spec = set_path(population_spec(num_clients=10, rounds=2),
                        "network.regions", regions)
        spec = set_path(spec, "attacks", (AttackSpec.of(
            "mitm", at="region:eu", mode="poison",
            forged=("203.0.113.77", "203.0.113.78")),))
        outcomes = materialize(spec, 29).run()
        # Half the clients sit behind the owned link.
        assert outcomes.victim_fraction == pytest.approx(0.5)

    def test_attack_on_unknown_region_rejected(self):
        spec = set_path(population_spec(num_clients=4), "attacks",
                        (AttackSpec.of("mitm", at="region:nowhere",
                                       mode="empty"),))
        with pytest.raises(ConfigurationError, match="unknown region"):
            materialize(spec, 1)

    def test_timeshift_attack_corrupts_pool_members(self):
        spec = set_path(population_spec(num_clients=10, rounds=2),
                        "attacks",
                        (AttackSpec.of("timeshift", count=5,
                                       lie_offset=30.0),))
        world = materialize(spec, 31)
        assert len(world.ntp_fleet.malicious_servers) == 5
        outcomes = world.run()
        assert outcomes.victim_fraction > 0.0

    def test_materialize_rejects_non_spec(self):
        with pytest.raises(ConfigurationError, match="ScenarioSpec"):
            materialize({"fleet": None}, 1)


class TestPresetRegistry:
    def test_unknown_preset_lists_valid_names(self):
        with pytest.raises(UnknownPresetError) as excinfo:
            get_preset("figure2")
        assert "figure1" in str(excinfo.value)
        assert excinfo.value.known == sorted(
            ["figure1", "large-scale", "lossy-network", "degraded-network",
             "custom"])
        # Still a ValueError, as the campaign layer expects.
        assert isinstance(excinfo.value, ValueError)


class TestResolverModes:
    def test_forwarding_to_dict_is_byte_stable(self):
        # The pre-hierarchy wire format: forwarding specs must not grow
        # new keys, or cached spec JSON and goldens would shift.
        data = ResolverSpec().to_dict()
        assert "mode" not in data
        assert "hierarchy" not in data

    def test_iterative_spec_round_trips(self):
        spec = hierarchy_spec(pool_size=10)
        assert spec.provider.resolver.mode == "iterative"
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_custom_hierarchy_round_trips(self):
        resolver = ResolverSpec(
            mode="iterative",
            hierarchy=HierarchySpec(ns_count=3, glue=False))
        assert ResolverSpec.from_dict(resolver.to_dict()) == resolver

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            ResolverSpec(mode="recursive-available")
        assert RESOLVER_MODES == ("forwarding", "iterative")

    def test_hierarchy_requires_iterative_mode(self):
        with pytest.raises(ConfigurationError):
            ResolverSpec(mode="forwarding", hierarchy=HierarchySpec())


class TestAttackPseudoPaths:
    def test_get_and_set_attack_params(self):
        spec = hierarchy_population_spec(spray_rate=2.0)
        assert get_path(spec, "attacks[0].rate") == 2.0
        faster = set_path(spec, "attacks[0].rate", 16.0)
        assert get_path(faster, "attacks[0].rate") == 16.0
        assert get_path(spec, "attacks[0].rate") == 2.0  # original intact

    def test_attack_kind_is_addressable(self):
        spec = hierarchy_population_spec()
        assert get_path(spec, "attacks[0].kind") == "offpath"

    def test_unknown_attack_param_raises(self):
        spec = hierarchy_population_spec()
        with pytest.raises(ConfigurationError):
            get_path(spec, "attacks[0].warp_factor")

    def test_attack_index_out_of_range(self):
        spec = hierarchy_population_spec()
        with pytest.raises(ConfigurationError):
            set_path(spec, "attacks[3].rate", 1.0)


class TestSpecPresetRegistry:
    def test_known_spec_presets(self):
        assert set(SPEC_PRESETS) == {
            "figure1", "large-scale", "lossy-network", "degraded-network",
            "e2-grid-base", "hierarchy", "hierarchy-population", "custom"}

    def test_spec_presets_return_specs(self):
        for preset_name in ("e2-grid-base", "hierarchy",
                            "hierarchy-population"):
            spec = get_spec_preset(preset_name)()
            assert isinstance(spec, ScenarioSpec)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_e2_grid_base_has_sweepable_nodes(self):
        spec = e2_grid_base_spec()
        # The grid axes bench_e2 sweeps must all have concrete nodes.
        assert get_path(spec, "network.access.latency") > 0
        assert get_path(spec, "provider.count") == 3

    def test_unknown_spec_preset_lists_names(self):
        with pytest.raises(UnknownPresetError) as excinfo:
            get_spec_preset("hierarchyy")
        assert "hierarchy" in str(excinfo.value)
