"""ChaosController: timeline execution against compiled worlds.

Unit-level tests drive a manually installed controller over a
materialized pool world (so event targets can name hosts the world
actually has); integration tests go through ``materialize`` with the
chaos spec embedded, the way campaigns build chaos worlds.
"""

import dataclasses

import pytest

from repro.chaos import (
    CacheWipe,
    ChaosSpec,
    LinkFlap,
    Overload,
    Partition,
    ServerOutage,
)
from repro.chaos.controller import ChaosController
from repro.core.errors import ConfigurationError
from repro.population.sharding import invariant_snapshot_json
from repro.scenarios.spec import materialize, pool_spec, population_spec
from repro.telemetry.registry import MetricsRegistry


def install(world, *events, registry=None):
    return ChaosController(ChaosSpec(events=tuple(events)), world,
                           registry=registry).install()


OUTAGE = ServerOutage(scope="providers", fraction=0.6, at=5.0,
                      duration=20.0)


def chaos_population_spec(**overrides):
    kwargs = dict(num_clients=6, rounds=3)
    kwargs.update(overrides)
    return dataclasses.replace(
        population_spec(**kwargs),
        chaos=ChaosSpec(events=(OUTAGE,)))


class TestOutage:
    def test_crash_and_restore(self):
        world = materialize(pool_spec(), seed=11)
        name = world.providers[0].host.name
        install(world, ServerOutage(hosts=(name,), at=5.0, duration=10.0))
        assert not world.internet.host_is_down(name)
        world.run(until=6.0)
        assert world.internet.host_is_down(name)
        world.run(until=20.0)
        assert not world.internet.host_is_down(name)

    def test_window_is_recorded(self):
        world = materialize(pool_spec(), seed=11)
        name = world.providers[0].host.name
        controller = install(
            world, ServerOutage(hosts=(name,), at=5.0, duration=10.0))
        world.run(until=20.0)
        assert controller.windows == [("outage", 5.0, 15.0, (name,))]

    def test_fractional_sample_is_deterministic(self):
        def targets():
            world = materialize(pool_spec(), seed=23)
            controller = install(world, OUTAGE)
            world.run(until=30.0)
            (_, _, _, sampled), = controller.windows
            return sampled, {d.host.name for d in world.providers}

        first, providers = targets()
        second, _ = targets()
        assert first == second                       # same seed, same victims
        assert len(first) == 2                       # ceil(0.6 * 3)
        assert set(first) <= providers

    def test_zero_fraction_hits_nothing(self):
        world = materialize(pool_spec(), seed=11)
        controller = install(
            world, ServerOutage(scope="providers", fraction=0.0, at=1.0,
                                duration=5.0))
        world.run(until=10.0)
        assert controller.windows == [("outage", 1.0, 6.0, ())]
        assert not any(world.internet.host_is_down(d.host.name)
                       for d in world.providers)

    def test_unknown_host_rejected_at_install(self):
        world = materialize(pool_spec(), seed=11)
        with pytest.raises(ConfigurationError, match="no-such-host"):
            install(world, ServerOutage(hosts=("no-such-host",)))


class TestTopologyEvents:
    def test_partition_removes_links_and_heals(self):
        world = materialize(pool_spec(), seed=11)
        topology = world.internet.topology
        node = topology.links[0].ends[0]
        before = sorted(link.name for link in topology.links)
        version = topology.version
        install(world, Partition(isolate=(node,), at=5.0, duration=10.0))
        world.run(until=6.0)
        assert len(topology.links) < len(before)
        assert not any(node in link.ends for link in topology.links)
        assert topology.version > version
        world.run(until=20.0)
        assert sorted(link.name for link in topology.links) == before

    def test_link_flap_composes_and_restores(self):
        world = materialize(pool_spec(), seed=11)
        link = world.internet.topology.links[0]
        previous = link.fault
        install(world, LinkFlap(links=(link.name,), at=5.0, duration=10.0,
                                loss_rate=0.5))
        world.run(until=6.0)
        assert link.fault is not previous
        assert link.fault.loss_rate >= 0.5
        world.run(until=20.0)
        assert link.fault is previous

    def test_unknown_link_fails_when_applied(self):
        world = materialize(pool_spec(), seed=11)
        install(world, LinkFlap(links=("nowhere--elsewhere",), at=1.0))
        with pytest.raises(ConfigurationError, match="nowhere--elsewhere"):
            world.run(until=5.0)


class TestCacheWipeAndOverload:
    def test_cache_wipe_flushes_every_provider(self):
        world = materialize(pool_spec(), seed=11)
        world.generate_pool_sync()           # warm the resolver caches
        assert any(d.resolver.cache.size for d in world.providers)
        registry = MetricsRegistry()
        controller = install(world, CacheWipe(at=world.simulator.now + 1.0),
                             registry=registry)
        world.run(until=world.simulator.now + 5.0)
        assert all(d.resolver.cache.size == 0 for d in world.providers)
        (kind, at, end, targets), = controller.windows
        assert kind == "cache-wipe" and at == end
        assert set(targets) == {d.name for d in world.providers}
        snapshot = registry.snapshot()
        assert snapshot["counter"]["chaos.events{kind=cache-wipe}"] == 1

    def test_overload_attaches_and_detaches_capacity(self):
        world = materialize(pool_spec(), seed=11)
        engines = [d.doh_server if d.doh_server is not None else d.resolver
                   for d in world.providers]
        assert all(engine.capacity is None for engine in engines)
        install(world, Overload(scope="providers", at=5.0, duration=10.0,
                                qps=5.0, queue_depth=1))
        world.run(until=6.0)
        assert all(engine.capacity is not None for engine in engines)
        world.run(until=20.0)
        assert all(engine.capacity is None for engine in engines)

    def test_overload_servers_filter(self):
        world = materialize(pool_spec(), seed=11)
        chosen = world.providers[0]
        install(world, Overload(scope="providers",
                                servers=(chosen.name,), at=5.0,
                                duration=10.0))
        world.run(until=6.0)
        for deployment in world.providers:
            engine = (deployment.doh_server
                      if deployment.doh_server is not None
                      else deployment.resolver)
            assert (engine.capacity is not None) == (deployment is chosen)


class TestMaterializeIntegration:
    def test_empty_timeline_builds_no_controller(self):
        spec = dataclasses.replace(pool_spec(), chaos=ChaosSpec())
        assert materialize(spec, seed=3).chaos is None

    def test_chaos_free_world_has_no_chaos_telemetry(self):
        world = materialize(population_spec(num_clients=4, rounds=2), seed=3)
        world.run()
        assert world.chaos is None
        snapshot = world.telemetry.snapshot()
        assert not any(key.startswith("chaos.")
                       for kind in ("counter", "timeseries")
                       for key in snapshot.get(kind, {}))

    def test_population_outage_degrades_then_recovers(self):
        world = materialize(chaos_population_spec(), seed=7)
        world.run()
        assert world.chaos is not None
        assert world.chaos.windows and world.chaos.windows[0][0] == "outage"
        snapshot = world.telemetry.snapshot()
        assert snapshot["counter"]["chaos.events{kind=outage}"] == 1
        drops = {key: value for key, value in snapshot["counter"].items()
                 if key.startswith("net.drops") and "host-down" in key}
        assert drops and sum(drops.values()) > 0
        # The availability series dips inside the window and recovers
        # after it closes.
        series = dict(world.telemetry.get("pop.availability").series())
        window = [mean for start, mean in series.items()
                  if OUTAGE.at <= start < OUTAGE.at + OUTAGE.duration]
        after = [mean for start, mean in series.items()
                 if start >= OUTAGE.at + OUTAGE.duration + 10.0]
        assert window and min(window) < 1.0
        assert after and after[-1] == 1.0

    def test_chaos_worlds_replay_byte_identically(self):
        def snapshot_json():
            world = materialize(chaos_population_spec(), seed=13)
            world.run()
            return world.telemetry.snapshot_json()

        assert snapshot_json() == snapshot_json()

    def test_cross_shard_population_invariants_hold_under_chaos(self):
        from repro.population.sharding import shard_invariant_spec

        def with_chaos(shards):
            return dataclasses.replace(
                shard_invariant_spec(12, shards=shards),
                chaos=ChaosSpec(events=(OUTAGE,)))

        seed = 31
        reference = materialize(with_chaos(shards=1), seed)
        reference.run()
        expected = invariant_snapshot_json(reference.telemetry)

        sharded = materialize(with_chaos(shards=3), seed)
        sharded.run()
        assert sharded.invariant_snapshot_json() == expected
