"""ServerCapacity: the deterministic bounded-queue model."""

from repro.chaos.capacity import QUEUE_DEPTH_BIN, ServerCapacity
from repro.netsim.simulator import Simulator
from repro.telemetry.registry import MetricsRegistry


def make_capacity(simulator, registry=None, **overrides):
    kwargs = dict(qps=10.0, queue_depth=2, service_time=0.01,
                  overflow="drop", label="dns.google")
    kwargs.update(overrides)
    return ServerCapacity(simulator, registry=registry, **kwargs)


class Recorder:
    def __init__(self):
        self.served = []
        self.rejected = 0

    def serve(self):
        self.served.append(True)

    def reject(self):
        self.rejected += 1


class TestQueueMechanics:
    def test_interval_is_max_of_service_time_and_rate(self):
        sim = Simulator()
        assert make_capacity(sim).interval == 0.1            # 1/qps wins
        assert make_capacity(sim, qps=10.0,
                             service_time=0.5).interval == 0.5

    def test_back_to_back_admits_until_queue_full(self):
        sim = Simulator()
        capacity = make_capacity(sim)       # interval 0.1, depth limit 2
        recorder = Recorder()
        assert capacity.admit(recorder.serve) is True        # in service
        assert capacity.admit(recorder.serve) is True        # 1 waiting
        assert capacity.admit(recorder.serve,
                              recorder.reject) is False      # overflow
        assert recorder.served == []        # service takes virtual time
        assert recorder.rejected == 0       # "drop" policy: silent

    def test_served_requests_complete_at_capacity_rate(self):
        sim = Simulator()
        capacity = make_capacity(sim)
        completions = []
        capacity.admit(lambda: completions.append(sim.now))
        capacity.admit(lambda: completions.append(sim.now))
        sim.run(until=1.0)
        assert completions == [0.1, 0.2]

    def test_queue_drains_with_virtual_time(self):
        sim = Simulator()
        capacity = make_capacity(sim)
        capacity.admit(lambda: None)
        capacity.admit(lambda: None)
        assert capacity.depth(sim.now) == 2.0
        sim.run(until=0.15)                  # one completion behind us
        assert 0.0 < capacity.depth(sim.now) < 1.0
        sim.run(until=5.0)
        assert capacity.depth(sim.now) == 0.0
        # Fully drained: admissions start a fresh busy period.
        assert capacity.admit(lambda: None) is True

    def test_zero_queue_depth_rejects_everything(self):
        sim = Simulator()
        capacity = make_capacity(sim, queue_depth=0)
        assert capacity.admit(lambda: None) is False

    def test_servfail_policy_invokes_reject_immediately(self):
        sim = Simulator()
        capacity = make_capacity(sim, overflow="servfail", queue_depth=1)
        recorder = Recorder()
        assert capacity.admit(recorder.serve) is True
        assert capacity.admit(recorder.serve, recorder.reject) is False
        assert recorder.rejected == 1       # bounced inline, no delay

    def test_drop_policy_never_calls_reject(self):
        sim = Simulator()
        capacity = make_capacity(sim, overflow="drop", queue_depth=1)
        recorder = Recorder()
        capacity.admit(recorder.serve)
        capacity.admit(recorder.serve)
        capacity.admit(recorder.serve, recorder.reject)
        assert recorder.rejected == 0


class TestTelemetry:
    def test_counters_and_depth_series(self):
        sim = Simulator()
        registry = MetricsRegistry()
        capacity = make_capacity(sim, registry=registry)
        for _ in range(4):                   # 2 admitted, 2 rejected
            capacity.admit(lambda: None, lambda: None)
        snap = registry.snapshot()
        assert snap["counter"]["srv.admitted{server=dns.google}"] == 2
        assert snap["counter"]["srv.rejected{server=dns.google}"] == 2
        depth = registry.get("srv.queue_depth", server="dns.google")
        assert depth is not None
        assert depth.bin_width == QUEUE_DEPTH_BIN
        # Arrival-sampled depths: 0, 1, 2, 2 all land in bin 0.
        (bin_start, mean), = depth.series()
        assert bin_start == 0.0
        assert mean == (0 + 1 + 2 + 2) / 4

    def test_no_registry_means_no_telemetry(self):
        sim = Simulator()
        capacity = make_capacity(sim, registry=None)
        assert capacity.admit(lambda: None) is True
        assert capacity.admit(lambda: None, lambda: None) is True
