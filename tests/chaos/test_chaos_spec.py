"""ChaosSpec serialization, validation, and sweepability."""

import json

import pytest

from repro.chaos import (
    EVENT_KINDS,
    CacheWipe,
    ChaosSpec,
    LinkFlap,
    Overload,
    Partition,
    ServerOutage,
    decode_event,
    encode_event,
)
from repro.core.errors import ConfigurationError
from repro.scenarios.spec import (
    ScenarioSpec,
    get_path,
    pool_spec,
    population_spec,
    set_path,
)

ALL_EVENTS = (
    ServerOutage(hosts=("dns.google",), at=3.0, duration=12.0),
    ServerOutage(scope="dns", fraction=0.5, at=1.0, duration=5.0),
    LinkFlap(links=("client-edge--eu-central",), at=2.0, duration=8.0,
             loss_rate=0.75),
    Partition(isolate=("us-east", "us-west"), at=4.0, duration=6.0),
    CacheWipe(resolvers=("dns.google",), at=7.5),
    Overload(scope="providers", at=0.5, duration=20.0, qps=25.0,
             queue_depth=4, service_time=0.005, overflow="servfail"),
)


class TestEventSerialization:
    @pytest.mark.parametrize("event", ALL_EVENTS,
                             ids=lambda e: type(e).__name__)
    def test_encode_decode_round_trip(self, event):
        data = encode_event(event)
        assert data["kind"] == type(event).KIND
        assert decode_event(json.loads(json.dumps(data))) == event

    def test_every_kind_registered(self):
        assert set(EVENT_KINDS) == {"outage", "link-flap", "partition",
                                    "cache-wipe", "overload"}
        for kind, cls in EVENT_KINDS.items():
            assert cls.KIND == kind

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="meteor"):
            decode_event({"kind": "meteor", "at": 1.0})

    def test_missing_kind_fails(self):
        with pytest.raises(ConfigurationError):
            decode_event({"at": 1.0})

    def test_unknown_event_key_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_event({"kind": "outage", "at": 1.0, "severity": 9})


class TestChaosSpec:
    def test_round_trip(self):
        spec = ChaosSpec(events=ALL_EVENTS)
        assert ChaosSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_empty_round_trip(self):
        assert ChaosSpec.from_dict({}) == ChaosSpec()
        assert ChaosSpec.from_dict({"events": []}) == ChaosSpec()

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec.from_dict({"surprise": True})


class TestEventValidation:
    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            ServerOutage(at=-1.0)
        with pytest.raises(ValueError):
            LinkFlap(duration=-5.0)

    def test_bad_scope_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerOutage(scope="satellites")
        with pytest.raises(ConfigurationError):
            Overload(scope="satellites")

    def test_fraction_and_loss_rate_are_probabilities(self):
        with pytest.raises(ValueError):
            ServerOutage(fraction=1.5)
        with pytest.raises(ValueError):
            LinkFlap(loss_rate=-0.1)

    def test_bad_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            Overload(overflow="explode")

    def test_overload_capacity_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            Overload(qps=-1.0)
        with pytest.raises(ConfigurationError):
            Overload(queue_depth=-1)
        with pytest.raises(ValueError):
            Overload(service_time=-0.5)


class TestScenarioIntegration:
    def test_chaos_free_spec_omits_chaos_key(self):
        """A spec without chaos serializes byte-identically to its
        pre-chaos JSON: no ``chaos`` key appears at all."""
        spec = population_spec(num_clients=4, rounds=2)
        assert spec.chaos is None
        assert "chaos" not in spec.to_dict()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_spec_with_chaos_round_trips(self):
        import dataclasses
        spec = dataclasses.replace(
            pool_spec(),
            chaos=ChaosSpec(events=(ServerOutage(fraction=0.5,
                                                 duration=10.0),)))
        data = json.loads(spec.to_json())
        assert data["chaos"]["events"][0]["kind"] == "outage"
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_chaos_paths_are_sweepable(self):
        import dataclasses
        spec = dataclasses.replace(
            population_spec(num_clients=4, rounds=2),
            chaos=ChaosSpec(events=(
                ServerOutage(fraction=0.3, at=5.0, duration=30.0),
                Overload(qps=40.0),
            )))
        assert get_path(spec, "chaos.events[0].fraction") == 0.3
        assert get_path(spec, "chaos.events[1].qps") == 40.0
        swept = set_path(spec, "chaos.events[0].duration", 60.0)
        assert swept.chaos.events[0].duration == 60.0
        # The untouched sibling event and the rest of the spec survive
        # the tuple rebuild.
        assert swept.chaos.events[1] == spec.chaos.events[1]
        assert swept.fleet == spec.fleet
