"""Golden-equivalence suite: the fast path must not change science.

The fixtures under ``fixtures/`` hold the complete outputs of
representative E2/E6/P1/P2 trials (metrics plus telemetry
``snapshot_json``) recorded from the tree *before* the netsim fast-path
optimizations (flight-plan caching, slotted core objects, memoized DNS
codec, chunked campaign sharding). Every scenario is replayed here at
the same seeds and compared byte-for-byte, and a small campaign is run
serially and in parallel to pin the sharded path to the same records.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial

from tests.golden.scenarios import SCENARIOS, SEEDS, canonical_json

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_netsim.json"


@pytest.fixture(scope="module")
def fixture():
    return json.loads(FIXTURE_PATH.read_text())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_pre_optimization_fixture(fixture, name, seed):
    recorded = fixture[name][str(seed)]
    computed = SCENARIOS[name](seed)
    assert canonical_json(computed) == canonical_json(recorded), (
        f"{name} at seed {seed} drifted from the pre-optimization fixture; "
        f"if the change is intentional, regenerate with "
        f"`PYTHONPATH=src python -m tests.golden.generate_fixtures`")


@pytest.mark.parametrize("executor", ["threads", "processes"])
def test_every_executor_campaign_matches_serial_records(fixture, executor):
    """The thread and chunked process paths must reassemble the exact
    serial records — and all must still produce the fixture's E2
    numbers."""
    grid = ParameterGrid(
        {"corrupted": (0, 2)},
        fixed={"num_providers": 5, "pool_size": 24, "answers_per_query": 4,
               "forged": tuple(f"203.0.113.{i + 1}" for i in range(4))},
        name="golden_serial_parallel",
    )
    serial = CampaignRunner(pool_attack_trial, trials_per_point=2,
                            base_seed=7, workers=0).run(grid)
    parallel = CampaignRunner(pool_attack_trial, trials_per_point=2,
                              base_seed=7, workers=3, chunk_size=1,
                              executor=executor).run(grid)
    assert [r.metrics for r in serial.records] \
        == [r.metrics for r in parallel.records]
    assert [(r.point_key, r.trial, r.seed) for r in serial.records] \
        == [(r.point_key, r.trial, r.seed) for r in parallel.records]
    assert serial.to_json()["results"] == parallel.to_json()["results"]
