"""Canonical scenarios pinned by the golden-equivalence suite.

Each scenario is a representative trial from the benchmark families the
ROADMAP tracks — E2 (corruption bound), E6 (empty-answer DoS under
loss), P1 (population fleet) and P2 (per-region fleets under an on-path
attacker) — executed at fixed seeds. Their complete outputs (every
metric, plus the telemetry ``snapshot_json`` where the world has a
registry) were recorded by :mod:`tests.golden.generate_fixtures`
*before* the netsim fast-path optimizations landed, so any drift in RNG
draw order, delivery semantics, combine policy or telemetry encoding
shows up as a byte-level fixture mismatch.

Regenerate (only when an *intentional* semantic change lands) with::

    PYTHONPATH=src python -m tests.golden.generate_fixtures
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Tuple

from repro.campaign.trials import pool_attack_trial, population_trial, spec_trial
from repro.scenarios.spec import (
    AttackSpec,
    FaultSpec,
    LinkSpec,
    RegionSpec,
    population_spec,
    set_path,
)

#: Seeds every scenario is pinned at.
SEEDS: Tuple[int, ...] = (101, 202, 303)

_FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

_REGIONS = (
    RegionSpec(name="eu", attach="eu-central",
               link=LinkSpec(latency=0.002, jitter=0.0005)),
    RegionSpec(name="us", attach="us-east",
               link=LinkSpec(latency=0.012, jitter=0.003)),
    RegionSpec(name="asia", attach="asia-east",
               link=LinkSpec(latency=0.030, jitter=0.008),
               fault=FaultSpec(loss_rate=0.05)),
)

_ONPATH = (AttackSpec.of("mitm", at="region:eu", mode="poison",
                         forged=tuple(f"203.0.113.{101 + i}"
                                      for i in range(4))),)


def _normalise(outcome: Any) -> Dict[str, Any]:
    """Render a trial outcome as the JSON-able payload the fixture pins.

    Trials return either a metrics mapping or ``(metrics, telemetry
    snapshot string)``; the snapshot is kept verbatim so the comparison
    is byte-exact, not merely structurally equal.
    """
    telemetry = None
    if isinstance(outcome, tuple):
        outcome, telemetry = outcome
    payload: Dict[str, Any] = {
        "metrics": {name: float(value) for name, value in outcome.items()},
    }
    if telemetry is not None:
        payload["telemetry"] = telemetry
    return payload


def _e2_corruption_bound(seed: int) -> Dict[str, Any]:
    return _normalise(pool_attack_trial({
        "num_providers": 5, "corrupted": 2, "pool_size": 24,
        "answers_per_query": 4, "forged": _FORGED,
    }, seed))


def _e6_dos_under_loss(seed: int) -> Dict[str, Any]:
    return _normalise(pool_attack_trial({
        "num_providers": 3, "corrupted": 1, "behavior": "empty",
        "pool_size": 20, "answers_per_query": 4, "loss_rate": 0.2,
        "min_answers": 2,
    }, seed))


def _p1_population(seed: int) -> Dict[str, Any]:
    return _normalise(population_trial({
        "num_clients": 40, "rounds": 3, "corrupted": 1,
        "forged": _FORGED, "churn_rate": 0.2, "arrival": "poisson",
    }, seed))


def _p2_regions(seed: int) -> Dict[str, Any]:
    spec = population_spec(num_clients=30, rounds=2)
    spec = set_path(spec, "network.regions", _REGIONS)
    spec = set_path(spec, "attacks", _ONPATH)
    return _normalise(spec_trial({"spec": spec}, seed))


SCENARIOS: Dict[str, Callable[[int], Dict[str, Any]]] = {
    "e2_corruption_bound": _e2_corruption_bound,
    "e6_dos_under_loss": _e6_dos_under_loss,
    "p1_population": _p1_population,
    "p2_regions": _p2_regions,
}


def compute_all() -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Run every scenario at every pinned seed."""
    return {
        name: {str(seed): scenario(seed) for seed in SEEDS}
        for name, scenario in SCENARIOS.items()
    }


def canonical_json(payload: Any) -> str:
    """The byte-exact rendering fixtures are stored and compared in."""
    return json.dumps(payload, sort_keys=True, indent=1)
