"""Regenerate the golden-equivalence fixtures.

Run from the repository root::

    PYTHONPATH=src python -m tests.golden.generate_fixtures

Only do this when a PR *intentionally* changes scientific outputs; the
whole point of the fixture is that performance work cannot. The current
fixture was recorded from the pre-fast-path tree (PR 4 state), so the
optimized delivery/heap/codec paths are pinned against the original
semantics, not against themselves.
"""

from __future__ import annotations

from pathlib import Path

from tests.golden.scenarios import canonical_json, compute_all

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_netsim.json"


def main() -> None:
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = compute_all()
    FIXTURE_PATH.write_text(canonical_json(payload) + "\n")
    print(f"wrote {FIXTURE_PATH} "
          f"({len(payload)} scenarios x {len(next(iter(payload.values())))} seeds)")


if __name__ == "__main__":
    main()
