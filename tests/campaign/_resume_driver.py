"""Subprocess driver for the kill-and-resume tests (and the CI
forced-interrupt smoke).

Runs one journaled campaign to completion and writes its records as
canonical JSON. The trial function logs every *execution* (not resumed
records) to ``RESUME_LOG`` and sleeps ``RESUME_SLEEP`` seconds, giving
the parent test a window to SIGKILL the process mid-campaign; both
knobs ride environment variables so they never touch point identities,
seeds, or the campaign fingerprint.

Usage::

    python -m tests.campaign._resume_driver <journal_dir> <out_json>

``RESUME_GRID=chaos`` swaps the synthetic grid for a real chaos-axis
campaign (``chaos_trial`` over an outage-fraction sweep), so the
kill-and-resume guarantee is exercised against full simulation worlds
with telemetry attached to every record.

Exit code 0 means the campaign completed and ``<out_json>`` holds its
records.
"""

import dataclasses
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.campaign import CampaignRunner, ParameterGrid, chaos_trial
from repro.chaos import ChaosSpec, ServerOutage
from repro.scenarios.spec import population_spec

BASE_SEED = 424242
GRID_AXES = {"x": (1, 2, 3, 4, 5, 6, 7, 8)}
GRID_NAME = "resume_probe"

CHAOS_GRID_NAME = "resume_chaos_probe"


def slow_logged_trial(params, seed):
    log_path = os.environ.get("RESUME_LOG")
    if log_path:
        with open(log_path, "a") as handle:
            handle.write(f"{seed}\n")
            handle.flush()
    time.sleep(float(os.environ.get("RESUME_SLEEP", "0")))
    rng = random.Random(seed)
    return {"value": params["x"] + rng.random(), "noise": rng.gauss(0, 1)}


def slow_logged_chaos_trial(params, seed):
    """:func:`repro.campaign.chaos_trial` with the driver's logging and
    kill-window sleep bolted on (env-driven, so identities/seeds/the
    fingerprint are untouched)."""
    log_path = os.environ.get("RESUME_LOG")
    if log_path:
        with open(log_path, "a") as handle:
            handle.write(f"{seed}\n")
            handle.flush()
    time.sleep(float(os.environ.get("RESUME_SLEEP", "0")))
    return chaos_trial(params, seed)


def chaos_grid():
    base = dataclasses.replace(
        population_spec(num_clients=4, rounds=2),
        chaos=ChaosSpec(events=(
            ServerOutage(scope="providers", fraction=0.6, at=5.0,
                         duration=20.0),)))
    return ParameterGrid.over_spec(
        base, {"chaos.events[0].fraction": (0.0, 0.3, 0.6)},
        name=CHAOS_GRID_NAME)


def records_payload(result):
    """The byte-comparable rendering of a campaign's records (telemetry
    snapshots included when the trial attached them)."""
    return json.dumps(
        [{"point_key": r.point_key, "trial": r.trial, "seed": r.seed,
          "metrics": r.metrics,
          **({"telemetry": r.telemetry} if r.telemetry is not None else {})}
         for r in result.records],
        sort_keys=True)


def run_campaign(journal_dir):
    if os.environ.get("RESUME_GRID") == "chaos":
        runner = CampaignRunner(slow_logged_chaos_trial, trials_per_point=2,
                                base_seed=BASE_SEED, executor="serial",
                                journal_dir=journal_dir)
        return runner.run(chaos_grid())
    grid = ParameterGrid(GRID_AXES, name=GRID_NAME)
    runner = CampaignRunner(slow_logged_trial, trials_per_point=1,
                            base_seed=BASE_SEED, executor="serial",
                            journal_dir=journal_dir)
    return runner.run(grid)


def main(argv):
    journal_dir, out_json = Path(argv[1]), Path(argv[2])
    result = run_campaign(journal_dir)
    out_json.write_text(json.dumps({
        "records": json.loads(records_payload(result)),
        "mode": result.mode,
        "resumed": result.resumed,
    }, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
