"""Subprocess driver for the kill-and-resume tests (and the CI
forced-interrupt smoke).

Runs one journaled campaign to completion and writes its records as
canonical JSON. The trial function logs every *execution* (not resumed
records) to ``RESUME_LOG`` and sleeps ``RESUME_SLEEP`` seconds, giving
the parent test a window to SIGKILL the process mid-campaign; both
knobs ride environment variables so they never touch point identities,
seeds, or the campaign fingerprint.

Usage::

    python -m tests.campaign._resume_driver <journal_dir> <out_json>

Exit code 0 means the campaign completed and ``<out_json>`` holds its
records.
"""

import json
import os
import random
import sys
import time
from pathlib import Path

from repro.campaign import CampaignRunner, ParameterGrid

BASE_SEED = 424242
GRID_AXES = {"x": (1, 2, 3, 4, 5, 6, 7, 8)}
GRID_NAME = "resume_probe"


def slow_logged_trial(params, seed):
    log_path = os.environ.get("RESUME_LOG")
    if log_path:
        with open(log_path, "a") as handle:
            handle.write(f"{seed}\n")
            handle.flush()
    time.sleep(float(os.environ.get("RESUME_SLEEP", "0")))
    rng = random.Random(seed)
    return {"value": params["x"] + rng.random(), "noise": rng.gauss(0, 1)}


def records_payload(result):
    """The byte-comparable rendering of a campaign's records."""
    return json.dumps(
        [{"point_key": r.point_key, "trial": r.trial, "seed": r.seed,
          "metrics": r.metrics} for r in result.records],
        sort_keys=True)


def run_campaign(journal_dir):
    grid = ParameterGrid(GRID_AXES, name=GRID_NAME)
    runner = CampaignRunner(slow_logged_trial, trials_per_point=1,
                            base_seed=BASE_SEED, executor="serial",
                            journal_dir=journal_dir)
    return runner.run(grid)


def main(argv):
    journal_dir, out_json = Path(argv[1]), Path(argv[2])
    result = run_campaign(journal_dir)
    out_json.write_text(json.dumps({
        "records": json.loads(records_payload(result)),
        "mode": result.mode,
        "resumed": result.resumed,
    }, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
