"""Tests for parameter-grid declaration and expansion."""

import pytest

from repro.campaign import GridPoint, ParameterGrid, point_key


class TestExpansionOrder:
    def test_last_axis_varies_fastest(self):
        grid = ParameterGrid({"n": (3, 5), "p": (0.1, 0.3, 0.5)})
        combos = [(pt.params["n"], pt.params["p"]) for pt in grid]
        assert combos == [(3, 0.1), (3, 0.3), (3, 0.5),
                          (5, 0.1), (5, 0.3), (5, 0.5)]

    def test_declaration_order_not_alphabetical(self):
        grid = ParameterGrid({"zeta": (1, 2), "alpha": ("a", "b")})
        combos = [(pt.params["zeta"], pt.params["alpha"]) for pt in grid]
        # zeta is the slow axis because it was declared first.
        assert combos == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_indices_are_sequential(self):
        grid = ParameterGrid({"n": (3, 5, 9)})
        assert [pt.index for pt in grid] == [0, 1, 2]

    def test_explicit_points_keep_given_order(self):
        grid = ParameterGrid.from_points([{"n": 9}, {"n": 3}, {"n": 5}])
        assert [pt.params["n"] for pt in grid] == [9, 3, 5]

    def test_len_counts_points(self):
        assert len(ParameterGrid({"a": (1, 2), "b": (1, 2, 3)})) == 6


class TestWhere:
    def test_dependent_axis(self):
        grid = ParameterGrid({"n": (3, 5), "corrupted": range(6)}).where(
            lambda p: p["corrupted"] <= p["n"])
        combos = [(pt.params["n"], pt.params["corrupted"]) for pt in grid]
        assert combos == ([(3, c) for c in range(4)]
                          + [(5, c) for c in range(6)])

    def test_where_chains(self):
        grid = (ParameterGrid({"n": range(10)})
                .where(lambda p: p["n"] % 2 == 0)
                .where(lambda p: p["n"] > 2))
        assert [pt.params["n"] for pt in grid] == [4, 6, 8]

    def test_filtered_indices_are_renumbered(self):
        grid = ParameterGrid({"n": range(6)}).where(lambda p: p["n"] % 2)
        assert [pt.index for pt in grid] == [0, 1, 2]

    def test_empty_expansion_rejected(self):
        grid = ParameterGrid({"n": (1, 2)}).where(lambda p: False)
        with pytest.raises(ValueError):
            grid.points()


class TestFixedParams:
    def test_fixed_merged_into_params(self):
        grid = ParameterGrid({"n": (3,)}, fixed={"pool_size": 40})
        point = grid.points()[0]
        assert point.params == {"pool_size": 40, "n": 3}

    def test_fixed_excluded_from_key(self):
        grid = ParameterGrid({"n": (3,)}, fixed={"pool_size": 40})
        assert grid.points()[0].key == "n=3"

    def test_axis_value_overrides_nothing(self):
        with pytest.raises(ValueError):
            ParameterGrid({"n": (3,)}, fixed={"n": 5})

    def test_explicit_point_fixed_overlap_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid.from_points([{"n": 3}], fixed={"n": 5})


class TestKeys:
    def test_key_is_stable_and_readable(self):
        assert point_key({"n": 3, "x": 0.5, "mode": "union"}) == \
            "n=3,x=0.5,mode=union"

    def test_key_independent_of_other_axes(self):
        """Adding axis values must not change existing points' keys
        (that would silently reseed their trials)."""
        small = {pt.params["n"]: pt.key
                 for pt in ParameterGrid({"n": (3, 5)})}
        large = {pt.params["n"]: pt.key
                 for pt in ParameterGrid({"n": (3, 5, 9)})}
        for n, key in small.items():
            assert large[n] == key

    def test_duplicate_points_rejected(self):
        grid = ParameterGrid.from_points([{"n": 3}, {"n": 3}])
        with pytest.raises(ValueError):
            grid.points()

    def test_gridpoint_key_autofill(self):
        point = GridPoint(index=0, params={"n": 3})
        assert point.key == "n=3"


class TestValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"n": ()})

    def test_no_axes_no_points_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({}).points()

    def test_from_points_requires_points(self):
        with pytest.raises(ValueError):
            ParameterGrid.from_points([])
