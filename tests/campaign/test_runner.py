"""Tests for campaign execution: sharding, seeding, determinism."""

import json
import random

import pytest

from repro.campaign import CampaignRunner, ParameterGrid, trial_seed
from repro.util.rng import derive_seed


# Module-level (picklable) trial functions for the multiprocessing path.

def noisy_trial(params, seed):
    rng = random.Random(seed)
    return {"value": params["offset"] + rng.random(),
            "noise": rng.gauss(0.0, 1.0)}


def scalar_trial(params, seed):
    return float(seed % 97)


def seed_echo_trial(params, seed):
    return {"seed": float(seed % 2 ** 31)}


def failing_trial(params, seed):
    raise RuntimeError("boom")


GRID_AXES = {"offset": (0.0, 10.0, 100.0)}


class TestSeedDerivation:
    def test_matches_util_rng(self):
        assert trial_seed(42, "n=3", 7) == derive_seed(
            42, "campaign", "n=3", "7")

    def test_unique_across_points_and_trials(self):
        grid = ParameterGrid({"offset": (0.0, 1.0, 2.0)})
        runner = CampaignRunner(seed_echo_trial, trials_per_point=5,
                                base_seed=1)
        seeds = [spec[5] for spec in runner.specs(grid)]
        assert len(set(seeds)) == len(seeds) == 15

    def test_seed_independent_of_sibling_axis_values(self):
        """Extending an axis must not reseed the existing points."""
        runner = CampaignRunner(seed_echo_trial, base_seed=9)
        small = {spec[2]: spec[5]
                 for spec in runner.specs(ParameterGrid({"offset": (1, 2)}))}
        large = {spec[2]: spec[5]
                 for spec in runner.specs(ParameterGrid({"offset": (1, 2, 3)}))}
        for key, seed in small.items():
            assert large[key] == seed

    def test_base_seed_changes_all_trials(self):
        grid = ParameterGrid(GRID_AXES)
        run_a = CampaignRunner(seed_echo_trial, base_seed=1).run(grid)
        run_b = CampaignRunner(seed_echo_trial, base_seed=2).run(grid)
        seeds_a = [r.seed for r in run_a.records]
        seeds_b = [r.seed for r in run_b.records]
        assert not set(seeds_a) & set(seeds_b)


class TestSerialParallelEquality:
    def test_records_and_aggregates_identical(self):
        grid = ParameterGrid(GRID_AXES, name="equality")
        serial = CampaignRunner(noisy_trial, trials_per_point=6,
                                base_seed=77, workers=0).run(grid)
        parallel = CampaignRunner(noisy_trial, trials_per_point=6,
                                  base_seed=77, workers=2,
                                  executor="processes").run(grid)
        assert serial.mode == "serial"
        assert parallel.mode == "processes:2"  # really crossed processes
        assert serial.records == parallel.records
        # Bit-identical aggregates, not merely approximately equal.
        assert (json.dumps(serial.to_json()["results"], sort_keys=True)
                == json.dumps(parallel.to_json()["results"], sort_keys=True))

    def test_chunked_parallel_equals_serial(self):
        grid = ParameterGrid(GRID_AXES)
        serial = CampaignRunner(scalar_trial, trials_per_point=8,
                                base_seed=5, workers=1).run(grid)
        chunked = CampaignRunner(scalar_trial, trials_per_point=8,
                                 base_seed=5, workers=3, chunk_size=2,
                                 executor="processes").run(grid)
        assert chunked.mode == "processes:3"
        assert serial.records == chunked.records

    def test_auto_workers_run_tiny_campaigns_serially(self):
        """workers=None must not pay pool startup for a 2-spec sweep."""
        grid = ParameterGrid({"offset": (0.0, 1.0)})
        result = CampaignRunner(scalar_trial, workers=None).run(grid)
        assert result.mode == "serial"

    def test_trial_errors_are_contained_in_parallel_mode(self):
        """A failing trial is contained as an error record — in the
        chosen parallel mode, not via a silent serial re-run — exactly
        as it would be serially."""
        grid = ParameterGrid({"offset": (0.0,) * 1})
        runner = CampaignRunner(failing_trial, trials_per_point=4, workers=2,
                                executor="processes")
        result = runner.run(grid)
        assert result.mode == "processes:2"
        assert result.failed == 4
        assert all(record.error is not None and "boom" in record.error
                   for record in result.records)

    def test_unpicklable_trial_falls_back_to_serial(self):
        grid = ParameterGrid({"offset": (0.0,)})
        captured = []
        runner = CampaignRunner(
            lambda params, seed: captured.append(seed) or 1.0,
            trials_per_point=3, workers=2, executor="processes")
        result = runner.run(grid)
        assert result.mode == "serial"
        assert len(captured) == 3


class TestDeterminism:
    def test_bit_identical_reruns_from_same_seed(self):
        """Regression: the same grid + seed must reproduce every record
        and every aggregate byte, run after run."""
        grid = ParameterGrid(GRID_AXES, name="determinism")
        make = lambda: CampaignRunner(noisy_trial, trials_per_point=4,
                                      base_seed=123).run(grid)
        first, second = make(), make()
        assert first.records == second.records
        assert (json.dumps(first.to_json(), sort_keys=True)
                == json.dumps(second.to_json(), sort_keys=True))

    def test_trial_metrics_are_pure_functions_of_seed(self):
        grid = ParameterGrid({"offset": (0.0,)})
        result = CampaignRunner(noisy_trial, trials_per_point=3,
                                base_seed=55).run(grid)
        for record in result.records:
            assert record.metrics == noisy_trial(record.params, record.seed)


class TestRunnerBehaviour:
    def test_scalar_return_becomes_value_metric(self):
        grid = ParameterGrid({"offset": (0.0,)})
        result = CampaignRunner(scalar_trial).run(grid)
        assert set(result.records[0].metrics) == {"value"}

    def test_trials_per_point_recorded(self):
        grid = ParameterGrid(GRID_AXES)
        result = CampaignRunner(scalar_trial, trials_per_point=4).run(grid)
        assert all(summary.trials == 4 for summary in result.summaries)
        assert len(result.records) == 12

    def test_grid_name_wins_over_runner_name(self):
        named = ParameterGrid({"offset": (0.0,)}, name="grid-name")
        result = CampaignRunner(scalar_trial, name="runner-name").run(named)
        assert result.name == "grid-name"
        anonymous = ParameterGrid({"offset": (0.0,)})
        result = CampaignRunner(scalar_trial, name="runner-name").run(anonymous)
        assert result.name == "runner-name"

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(scalar_trial, trials_per_point=0)
        with pytest.raises(ValueError):
            CampaignRunner(scalar_trial, workers=-1)
        with pytest.raises(ValueError):
            CampaignRunner(scalar_trial, chunk_size=0)
