"""Resumable campaigns: the completion journal and kill-and-resume.

The centrepiece SIGKILLs a real mid-flight campaign subprocess, reruns
it, and asserts (a) the resumed records are bit-identical to an
uninterrupted run's and (b) journaled trials were not re-executed.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignJournal, CampaignRunner, ParameterGrid
from repro.campaign.journal import journal_path

from tests.campaign import _resume_driver
from tests.campaign._resume_driver import (
    records_payload,
    run_campaign,
    slow_logged_trial,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def logged_seeds(log_path: Path) -> set:
    if not log_path.exists():
        return set()
    return {int(line) for line in log_path.read_text().split() if line}


class TestKillAndResume:
    def _spawn(self, journal_dir: Path, out_json: Path, log: Path,
               sleep_s: float, grid: str = "") -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(REPO_ROOT / "src") + os.pathsep
                             + str(REPO_ROOT)
                             + (os.pathsep + env["PYTHONPATH"]
                                if env.get("PYTHONPATH") else ""))
        env["RESUME_LOG"] = str(log)
        env["RESUME_SLEEP"] = str(sleep_s)
        if grid:
            env["RESUME_GRID"] = grid
        else:
            env.pop("RESUME_GRID", None)
        return subprocess.Popen(
            [sys.executable, "-m", "tests.campaign._resume_driver",
             str(journal_dir), str(out_json)],
            env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def _wait_for_journal_lines(self, journal_dir: Path, minimum: int,
                                timeout_s: float = 60.0) -> Path:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            files = list(journal_dir.glob("*.jsonl"))
            if files:
                lines = [line for line in
                         files[0].read_text().splitlines() if line.strip()]
                if len(lines) >= minimum:
                    return files[0]
            time.sleep(0.01)
        raise AssertionError(
            f"journal never reached {minimum} complete lines")

    def test_sigkill_mid_campaign_then_resume_bit_identical(self, tmp_path):
        journal_dir = tmp_path / "journal"
        log_1, log_2 = tmp_path / "exec1.log", tmp_path / "exec2.log"
        out_interrupted = tmp_path / "never-written.json"
        out_resumed = tmp_path / "resumed.json"

        # Phase 1: a slow campaign, SIGKILLed after >= 2 journal lines.
        victim = self._spawn(journal_dir, out_interrupted, log_1,
                             sleep_s=0.2)
        try:
            journal_file = self._wait_for_journal_lines(journal_dir, 2)
        finally:
            victim.kill()    # SIGKILL: no cleanup, no atexit, no flush
            victim.wait(timeout=30)
        assert not out_interrupted.exists(), \
            "campaign finished before it could be interrupted"
        journaled = {int(json.loads(line)["seed"])
                     for line in journal_file.read_text().splitlines()
                     if line.strip()}
        assert len(journaled) >= 2

        # Phase 2: rerun (fast trials now) — must complete and resume.
        resumer = self._spawn(journal_dir, out_resumed, log_2, sleep_s=0.0)
        assert resumer.wait(timeout=120) == 0
        resumed = json.loads(out_resumed.read_text())
        assert resumed["resumed"] == len(journaled)

        # Completed points were not re-executed...
        assert not journaled & logged_seeds(log_2)
        # ...and the journal is gone now that the campaign completed.
        assert not list(journal_dir.glob("*.jsonl"))

        # Reference: one uninterrupted run, fresh journal dir.
        os.environ.pop("RESUME_LOG", None)
        os.environ["RESUME_SLEEP"] = "0"
        try:
            reference = run_campaign(tmp_path / "fresh-journal")
        finally:
            os.environ.pop("RESUME_SLEEP", None)
        assert (json.dumps(resumed["records"], sort_keys=True)
                == records_payload(reference))

    def test_sigkill_mid_chaos_campaign_then_resume_bit_identical(
            self, tmp_path):
        """The resume guarantee over real chaos worlds: kill a chaos-axis
        sweep (full simulations, telemetry attached to every record)
        mid-flight, rerun, and the resumed records — telemetry snapshots
        included — match an uninterrupted run byte for byte."""
        journal_dir = tmp_path / "journal"
        log_1, log_2 = tmp_path / "exec1.log", tmp_path / "exec2.log"
        out_resumed = tmp_path / "resumed.json"

        victim = self._spawn(journal_dir, tmp_path / "never.json", log_1,
                             sleep_s=0.3, grid="chaos")
        try:
            journal_file = self._wait_for_journal_lines(journal_dir, 2)
        finally:
            victim.kill()
            victim.wait(timeout=30)
        journaled = {int(json.loads(line)["seed"])
                     for line in journal_file.read_text().splitlines()
                     if line.strip()}
        assert len(journaled) >= 2

        resumer = self._spawn(journal_dir, out_resumed, log_2,
                              sleep_s=0.0, grid="chaos")
        assert resumer.wait(timeout=180) == 0
        resumed = json.loads(out_resumed.read_text())
        assert resumed["resumed"] >= len(journaled)
        assert not journaled & logged_seeds(log_2)
        assert not list(journal_dir.glob("*.jsonl"))

        os.environ.pop("RESUME_LOG", None)
        os.environ["RESUME_SLEEP"] = "0"
        os.environ["RESUME_GRID"] = "chaos"
        try:
            reference = run_campaign(tmp_path / "fresh-journal")
        finally:
            os.environ.pop("RESUME_SLEEP", None)
            os.environ.pop("RESUME_GRID", None)
        assert (json.dumps(resumed["records"], sort_keys=True)
                == records_payload(reference))


def quick_trial(params, seed):
    import random
    rng = random.Random(seed)
    return {"value": params["offset"] + rng.random()}


GRID_AXES = {"offset": (0.0, 10.0, 100.0)}


class TestJournalLifecycle:
    def _runner(self, journal_dir, **kwargs):
        defaults = dict(trials_per_point=2, base_seed=5, executor="serial",
                        journal_dir=journal_dir)
        defaults.update(kwargs)
        return CampaignRunner(quick_trial, **defaults)

    def _grid(self, name="journal-test"):
        return ParameterGrid(GRID_AXES, name=name)

    def test_journal_removed_after_completed_run(self, tmp_path):
        result = self._runner(tmp_path).run(self._grid())
        assert result.resumed == 0
        assert not list(tmp_path.glob("*.jsonl"))

    def test_partial_journal_resumes_without_reexecution(self, tmp_path):
        full = CampaignRunner(quick_trial, trials_per_point=2, base_seed=5,
                              executor="serial").run(self._grid())
        runner = self._runner(tmp_path)
        specs = runner.specs(self._grid())
        fingerprint = runner._fingerprint("journal-test", specs)
        journal = CampaignJournal(
            journal_path(tmp_path, "journal-test", fingerprint))
        for record in full.records[:3]:
            journal.append(record)
        journal.close()

        result = runner.run(self._grid())
        assert result.resumed == 3
        assert result.records == full.records
        assert (json.dumps(result.to_json()["results"], sort_keys=True)
                == json.dumps(full.to_json()["results"], sort_keys=True))

    def test_fully_journaled_run_reports_resumed_mode(self, tmp_path):
        runner = self._runner(tmp_path)
        # Complete run, but keep the journal by interrupting the write
        # of the *cache* — simplest: journal everything by hand.
        full = CampaignRunner(quick_trial, trials_per_point=2, base_seed=5,
                              executor="serial").run(self._grid())
        specs = runner.specs(self._grid())
        fingerprint = runner._fingerprint("journal-test", specs)
        journal = CampaignJournal(
            journal_path(tmp_path, "journal-test", fingerprint))
        for record in full.records:
            journal.append(record)
        journal.close()
        result = runner.run(self._grid())
        assert result.mode == "resumed"
        assert result.resumed == len(full.records)
        assert result.records == full.records

    def test_torn_trailing_line_is_dropped_and_reexecuted(self, tmp_path):
        full = CampaignRunner(quick_trial, trials_per_point=2, base_seed=5,
                              executor="serial").run(self._grid())
        runner = self._runner(tmp_path)
        specs = runner.specs(self._grid())
        fingerprint = runner._fingerprint("journal-test", specs)
        path = journal_path(tmp_path, "journal-test", fingerprint)
        journal = CampaignJournal(path)
        for record in full.records[:2]:
            journal.append(record)
        journal.close()
        with path.open("a") as handle:      # the SIGKILL-torn tail
            handle.write('{"point_key": "offset=10.0", "tri')
        result = runner.run(self._grid())
        assert result.resumed == 2
        assert result.records == full.records

    def test_seed_mismatch_in_journal_is_not_trusted(self, tmp_path):
        runner = self._runner(tmp_path)
        specs = runner.specs(self._grid())
        fingerprint = runner._fingerprint("journal-test", specs)
        path = journal_path(tmp_path, "journal-test", fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "point_key": "offset=0.0", "trial": 0, "seed": 123,
            "metrics": {"value": 99.0}}) + "\n")
        result = runner.run(self._grid())
        assert result.resumed == 0
        assert all(r.metrics["value"] != 99.0 for r in result.records)

    def test_base_seed_change_ignores_stale_journal(self, tmp_path):
        r1 = self._runner(tmp_path)
        specs = r1.specs(self._grid())
        journal = CampaignJournal(journal_path(
            tmp_path, "journal-test", r1._fingerprint("journal-test", specs)))
        full = CampaignRunner(quick_trial, trials_per_point=2, base_seed=5,
                              executor="serial").run(self._grid())
        for record in full.records:
            journal.append(record)
        journal.close()
        result = self._runner(tmp_path, base_seed=6).run(self._grid())
        assert result.resumed == 0      # different fingerprint, new journal

    def test_journal_and_cache_compose(self, tmp_path):
        """A resumed run still lands in the result cache; the rerun
        after that is a cache hit and the journal stays gone."""
        cache_dir = tmp_path / "cache"
        first = self._runner(tmp_path, cache_dir=cache_dir).run(self._grid())
        assert first.mode == "serial"
        again = self._runner(tmp_path, cache_dir=cache_dir).run(self._grid())
        assert again.mode == "cached"
        assert again.records == first.records
        assert not list(tmp_path.glob("*.jsonl"))

    def test_parallel_executors_journal_too(self, tmp_path):
        serial = CampaignRunner(quick_trial, trials_per_point=4, base_seed=9,
                                executor="serial").run(self._grid("par"))
        result = CampaignRunner(quick_trial, trials_per_point=4, base_seed=9,
                                workers=2, executor="processes",
                                chunk_size=2,
                                journal_dir=tmp_path).run(self._grid("par"))
        assert result.mode == "processes:2"
        assert result.records == serial.records
        assert not list(tmp_path.glob("*.jsonl"))
