"""Campaign-level tracing: sampling, executor equality, export.

``CampaignRunner(include_traces=True)`` wraps each sampled trial in a
per-trial tracer whose snapshot rides the trial record through every
path a record can take — executor workers, the completion journal, the
result cache, the aggregated result. The core contract mirrors the
metrics one: all three executors produce byte-identical traces, and a
sampled-out trial runs with no tracer at all (same bytes as an
untraced run).
"""

import json

from repro.campaign import CampaignRunner, ParameterGrid, population_trial
from repro.telemetry.trace import should_sample

FORGED = ("203.0.113.1", "203.0.113.2")

GRID = ParameterGrid(
    {"corrupted": (0, 1)},
    fixed={"num_clients": 3, "rounds": 2, "num_providers": 3,
           "behavior": "substitute", "forged": FORGED,
           "pool_size": 8, "answers_per_query": 4},
    name="traced_grid")


def _run(executor, **kwargs):
    kwargs.setdefault("include_traces", True)
    runner = CampaignRunner(population_trial, trials_per_point=2,
                            base_seed=7, workers=2, executor=executor,
                            **kwargs)
    return runner.run(GRID)


def _trace_map(result):
    return {(summary.point_key, trial): json.dumps(snapshot, sort_keys=True)
            for summary in result.summaries
            for trial, snapshot in summary.traces.items()}


class TestExecutorEquality:
    def test_serial_threads_processes_trace_identically(self):
        serial = _trace_map(_run("serial"))
        assert serial and all(serial.values())
        assert _trace_map(_run("threads")) == serial
        assert _trace_map(_run("processes")) == serial


class TestTraceContent:
    def test_every_trial_roots_at_campaign_trial(self):
        for (key, trial), encoded in _trace_map(_run("serial")).items():
            snapshot = json.loads(encoded)
            root = snapshot["spans"][0]
            assert root["name"] == "campaign.trial"
            assert root["parent"] is None
            assert root["attrs"]["point"] == key
            assert root["attrs"]["trial"] == trial

    def test_traces_reach_the_json_export(self):
        payload = _run("serial").to_json()
        traced_points = [point for point in payload["results"]
                         if "traces" in point]
        assert traced_points
        for point in traced_points:
            for snapshot in point["traces"].values():
                assert snapshot["spans"]


class TestSampling:
    def test_rate_zero_attaches_no_traces(self):
        result = _run("serial", trace_sample=0.0)
        assert _trace_map(result) == {}

    def test_partial_rate_traces_exactly_the_sampled_subset(self):
        rate = 0.5
        traced = _trace_map(_run("serial", trace_sample=rate))
        for summary in _run("serial").summaries:
            for trial in range(2):
                expected = should_sample(summary.point_key, trial, rate)
                assert ((summary.point_key, trial) in traced) == expected

    def test_untraced_runs_report_identical_metrics(self):
        traced = _run("serial")
        plain = CampaignRunner(population_trial, trials_per_point=2,
                               base_seed=7, workers=2,
                               executor="serial").run(GRID)
        for with_traces, without in zip(traced.summaries, plain.summaries):
            assert with_traces["victim_fraction"].mean == (
                without["victim_fraction"].mean)


class TestFingerprint:
    def test_tracing_config_lands_in_the_fingerprint(self):
        plain = CampaignRunner(population_trial, base_seed=7)
        traced = CampaignRunner(population_trial, base_seed=7,
                                include_traces=True)
        sampled = CampaignRunner(population_trial, base_seed=7,
                                 include_traces=True, trace_sample=0.5)
        prints = {runner._fingerprint(GRID.name, runner.specs(GRID))
                  for runner in (plain, traced, sampled)}
        assert len(prints) == 3

    def test_invalid_sample_rate_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            CampaignRunner(population_trial, trace_sample=1.5)
