"""Tests for the stock trial functions against the real simulation."""

import json

import pytest

from repro.analysis.model import attack_probability_exact
from repro.analysis.montecarlo import MonteCarloResult
from repro.campaign import (
    CampaignRunner,
    ParameterGrid,
    attack_probability_trial,
    build_scenario,
    pool_attack_trial,
)
from repro.core.policy import DualStackPolicy

FORGED = ("203.0.113.1", "203.0.113.2", "203.0.113.3", "203.0.113.4")


class TestBuildScenario:
    def test_custom_preset_passes_knobs(self):
        scenario = build_scenario({"num_providers": 5, "pool_size": 8}, seed=2)
        assert len(scenario.providers) == 5
        assert scenario.seed == 2

    def test_named_preset(self):
        scenario = build_scenario({"preset": "figure1"}, seed=3)
        assert len(scenario.providers) == 3

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            build_scenario({"preset": "nope"}, seed=1)

    def test_unrelated_params_ignored(self):
        scenario = build_scenario({"corrupted": 1, "forged": FORGED,
                                   "pool_size": 8}, seed=1)
        assert scenario.directory.members  # built despite attack params


class TestPoolAttackTrial:
    def test_honest_world_metrics(self):
        metrics = pool_attack_trial({"num_providers": 3, "pool_size": 8}, 7)
        assert metrics["attacker_share"] == 0.0
        assert metrics["pool_size"] == 12.0  # 3 resolvers × 4 answers
        assert metrics["benign_fraction"] == 1.0

    def test_substitution_share_is_exact(self):
        metrics = pool_attack_trial(
            {"num_providers": 3, "pool_size": 8, "corrupted": 1,
             "forged": FORGED}, 7)
        assert metrics["attacker_share"] == pytest.approx(1 / 3)
        assert metrics["voted_attacker_share"] == 0.0

    def test_dual_stack_per_family_shares(self):
        metrics = pool_attack_trial(
            {"num_providers": 3, "pool_size": 12, "answers_per_query": 3,
             "dual_stack": True, "corrupted": 1,
             "forged": ("2001:db8:bad::1", "2001:db8:bad::2",
                        "2001:db8:bad::3"),
             "policy": DualStackPolicy.PER_FAMILY}, 7)
        assert metrics["v4_share"] == 0.0
        assert metrics["v6_share"] == pytest.approx(1 / 3)

    def test_typoed_parameter_rejected(self):
        """A sweep axis nothing consumes must fail loudly, not run the
        whole grid against defaults."""
        with pytest.raises(ValueError, match="answers_per_qeury"):
            pool_attack_trial({"num_providers": 3, "pool_size": 8,
                               "answers_per_qeury": 2}, 7)

    def test_inflate_behavior_reaches_full_control(self):
        """All resolvers corrupted with inflate: the truncated pool is
        entirely attacker addresses (the [1] over-population ceiling)."""
        many = tuple(f"203.0.113.{i + 1}" for i in range(12))
        metrics = pool_attack_trial(
            {"num_providers": 3, "pool_size": 8, "corrupted": 3,
             "behavior": "inflate", "forged": many, "inflate_to": 2}, 7)
        assert metrics["attacker_share"] == 1.0
        assert metrics["pool_size"] == 6.0  # 3 resolvers × inflate_to=2

    def test_policy_accepts_string_values(self):
        metrics = pool_attack_trial(
            {"num_providers": 3, "pool_size": 8, "dual_stack": True,
             "policy": "union", "truncation": "shortest"}, 7)
        assert metrics["pool_size"] > 0

    def test_serial_and_parallel_scenario_sweeps_agree(self):
        """The acceptance-criterion path: a real end-to-end netsim sweep
        aggregated identically in serial and multiprocessing modes."""
        grid = ParameterGrid(
            {"corrupted": (0, 1)},
            fixed={"num_providers": 3, "pool_size": 8, "forged": FORGED},
            name="sweep-equality")
        serial = CampaignRunner(pool_attack_trial, base_seed=21,
                                workers=0).run(grid)
        parallel = CampaignRunner(pool_attack_trial, base_seed=21,
                                  workers=2, executor="processes").run(grid)
        assert serial.records == parallel.records
        # Everything except the mode tag is bit-identical.
        assert (json.dumps(serial.to_json()["results"], sort_keys=True)
                == json.dumps(parallel.to_json()["results"], sort_keys=True))
        assert parallel.mode == "processes:2"


class TestMonteCarloTrial:
    def test_chunked_campaign_reconstructs_estimate(self):
        grid = ParameterGrid.from_points(
            [{"n": 3, "x": 2 / 3, "p_attack": 0.3}],
            fixed={"chunk": 250})
        result = CampaignRunner(attack_probability_trial, trials_per_point=8,
                                base_seed=13).run(grid)
        success = result.summaries[0]["success"]
        mc = MonteCarloResult.from_chunk_means(success.mean, success.stderr,
                                               success.count, 250)
        assert mc.trials == 2000
        assert mc.within(attack_probability_exact(3, 2 / 3, 0.3))

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            MonteCarloResult.from_chunk_means(0.5, 0.1, 0, 10)
