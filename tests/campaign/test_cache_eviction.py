"""The results cache's size cap and LRU sweep."""

import json
import logging
import os
import time

from repro.campaign import CampaignRunner, ParameterGrid, advantage_bits_trial

GRID = ParameterGrid({"n": (3, 5)}, fixed={"p_attack": 0.5},
                     name="evict_probe")


def _plant(cache_dir, name: str, size: int, age_s: float):
    """Create a fake cache entry of ``size`` bytes, ``age_s`` old."""
    path = cache_dir / name
    path.write_text("x" * size)
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))
    return path


def test_lru_sweep_evicts_oldest_first(tmp_path, caplog):
    oldest = _plant(tmp_path, "a-old.json", 4000, age_s=300)
    newer = _plant(tmp_path, "b-new.json", 4000, age_s=100)
    runner = CampaignRunner(advantage_bits_trial, base_seed=1,
                            cache_dir=tmp_path, cache_max_bytes=6000)
    with caplog.at_level(logging.INFO, logger="repro.campaign"):
        runner.run(GRID)
    assert not oldest.exists()
    assert newer.exists()
    # The just-written entry is the most recent; it always survives.
    written = [p for p in tmp_path.glob("evict_probe-*.json")]
    assert len(written) == 1
    assert any("evicted" in record.message for record in caplog.records)


def test_sweep_keeps_directory_under_cap(tmp_path):
    for index in range(6):
        _plant(tmp_path, f"entry-{index}.json", 3000, age_s=600 - index)
    CampaignRunner(advantage_bits_trial, base_seed=1, cache_dir=tmp_path,
                   cache_max_bytes=5000).run(GRID)
    total = sum(p.stat().st_size for p in tmp_path.glob("*.json"))
    assert total <= 5000


def test_cache_hit_refreshes_mtime_for_lru(tmp_path):
    runner = CampaignRunner(advantage_bits_trial, base_seed=1,
                            cache_dir=tmp_path)
    runner.run(GRID)
    (path,) = tmp_path.glob("evict_probe-*.json")
    stale = time.time() - 900
    os.utime(path, (stale, stale))
    result = runner.run(GRID)
    assert result.mode == "cached"
    assert path.stat().st_mtime > stale + 300


def test_entry_larger_than_cap_survives_its_own_write(tmp_path):
    """Regression: the sweep must exempt the just-written entry, or a
    campaign bigger than ``cache_max_bytes`` evicts itself and the very
    next run recomputes instead of hitting the cache."""
    runner = CampaignRunner(advantage_bits_trial, base_seed=1,
                            cache_dir=tmp_path, cache_max_bytes=1)
    first = runner.run(GRID)
    (entry,) = tmp_path.glob("evict_probe-*.json")
    assert entry.stat().st_size > 1
    again = runner.run(GRID)
    assert again.mode == "cached"
    assert again.records == first.records


def test_oversized_entry_still_evictable_by_later_writes(tmp_path):
    """The exemption covers only the write that created the entry; a
    *different* campaign's sweep may evict it normally."""
    CampaignRunner(advantage_bits_trial, base_seed=1, cache_dir=tmp_path,
                   cache_max_bytes=1).run(GRID)
    (entry,) = tmp_path.glob("evict_probe-*.json")
    stale = time.time() - 900
    os.utime(entry, (stale, stale))
    other = ParameterGrid({"n": (4, 6)}, fixed={"p_attack": 0.5},
                          name="evict_other")
    CampaignRunner(advantage_bits_trial, base_seed=1, cache_dir=tmp_path,
                   cache_max_bytes=1).run(other)
    assert not entry.exists()
    assert list(tmp_path.glob("evict_other-*.json"))


def test_no_cap_disables_sweep(tmp_path):
    planted = _plant(tmp_path, "keep.json", 50_000, age_s=900)
    CampaignRunner(advantage_bits_trial, base_seed=1, cache_dir=tmp_path,
                   cache_max_bytes=None).run(GRID)
    assert planted.exists()


def test_sweep_ignores_unreadable_entries(tmp_path):
    CampaignRunner(advantage_bits_trial, base_seed=1, cache_dir=tmp_path,
                   cache_max_bytes=1).run(GRID)
    # Even with an absurd cap the just-run campaign still returned
    # records and left at most the newest file behind.
    leftovers = list(tmp_path.glob("*.json"))
    assert len(leftovers) <= 1


def test_cache_entries_are_valid_json_after_sweep(tmp_path):
    runner = CampaignRunner(advantage_bits_trial, base_seed=1,
                            cache_dir=tmp_path, cache_max_bytes=10_000_000)
    runner.run(GRID)
    for path in tmp_path.glob("*.json"):
        payload = json.loads(path.read_text())
        assert "records" in payload
