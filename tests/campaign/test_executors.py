"""The executor subsystem: adaptive choice + three-way bit-equality."""

import random

import pytest

from repro.campaign import CampaignRunner, ParameterGrid
from repro.campaign.executors import (
    POOL_STARTUP_S,
    TINY_TRIAL_S,
    choose_executor,
    chunk_specs,
    probe_picklable,
)
from repro.campaign.trials import pool_attack_trial, population_trial

FORGED = tuple(f"203.0.113.{i + 1}" for i in range(4))

#: The golden E2 corruption-bound sweep (same axes/fixed as the golden
#: fixture scenario) — a real end-to-end netsim workload.
E2_GRID_KWARGS = dict(
    axes={"corrupted": (0, 2)},
    fixed={"num_providers": 5, "pool_size": 24, "answers_per_query": 4,
           "forged": FORGED},
)

#: A miniature of the golden P1 population fleet — telemetry-publishing
#: trials, which is what makes the thread path interesting: concurrent
#: worlds must not capture each other's registries.
P1_GRID_KWARGS = dict(
    axes={"corrupted": (0, 1)},
    fixed={"num_clients": 12, "rounds": 2, "forged": FORGED,
           "churn_rate": 0.2, "arrival": "poisson"},
)


def noisy_trial(params, seed):
    rng = random.Random(seed)
    return {"value": params["offset"] + rng.random()}


class TestChooseExecutor:
    def test_short_campaign_stays_serial(self):
        """Below the amortisation threshold nothing can be won."""
        choice = choose_executor(per_spec_s=0.001, pending=20,
                                 workers_cap=8, cpu_count=8)
        assert choice.kind == "serial"

    def test_single_core_machine_stays_serial(self):
        """The measured 0.9x regression: a 4-worker pool on a 1-core
        box is pure overhead, whatever the workload size."""
        choice = choose_executor(per_spec_s=1.0, pending=1000,
                                 workers_cap=4, cpu_count=1)
        assert choice.kind == "serial"

    def test_tiny_trials_use_threads(self):
        """Sub-millisecond trials in bulk: fork IPC would dominate."""
        per_spec = TINY_TRIAL_S / 2
        pending = int(POOL_STARTUP_S / per_spec) * 10
        choice = choose_executor(per_spec, pending,
                                 workers_cap=4, cpu_count=4)
        assert choice.kind == "threads"
        assert choice.workers == 4

    def test_expensive_trials_use_processes(self):
        choice = choose_executor(per_spec_s=0.5, pending=100,
                                 workers_cap=4, cpu_count=4)
        assert choice.kind == "processes"
        assert choice.mode == "processes:4"

    def test_workers_capped_by_cores_and_pending(self):
        assert choose_executor(0.5, 100, workers_cap=16,
                               cpu_count=2).workers == 2
        assert choose_executor(10.0, 3, workers_cap=16,
                               cpu_count=16).workers == 3

    def test_exact_amortisation_boundary_is_serial(self):
        """Savings equal to pool startup do not justify the pool."""
        # 2 workers -> saving is half the projected serial cost.
        per_spec, pending = POOL_STARTUP_S, 2
        choice = choose_executor(per_spec, pending,
                                 workers_cap=2, cpu_count=2)
        assert choice.kind == "serial"


class TestSpecHelpers:
    def _specs(self, count, params=None):
        return [(noisy_trial, i, f"k={i}", params or {"offset": 0.0}, 0, i)
                for i in range(count)]

    def test_chunks_cover_all_specs_in_order(self):
        specs = self._specs(10)
        chunks = chunk_specs(specs, workers=3, chunk_size=None)
        assert [s for chunk in chunks for s in chunk] == specs

    def test_explicit_chunk_size_honoured(self):
        chunks = chunk_specs(self._specs(10), workers=3, chunk_size=4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_probe_accepts_picklable_specs(self):
        assert probe_picklable(self._specs(5))

    def test_probe_rejects_unpicklable_params(self):
        specs = self._specs(3)
        # The representative is the spec with the *most* params — the
        # deepest serialization surface stands in for the grid.
        specs[1] = (noisy_trial, 1, "k=1",
                    {"offset": 0.0, "fn": lambda: None}, 0, 1)
        assert not probe_picklable(specs)

    def test_probe_rejects_unpicklable_trial_fn(self):
        assert not probe_picklable(
            [(lambda p, s: 0.0, 0, "k=0", {"offset": 0.0}, 0, 0)])


class TestThreeWayEquality:
    """serial == threads == processes, bit for bit, on the golden
    E2/P1 workloads."""

    def _run_all(self, trial_fn, grid_kwargs, name, **runner_kwargs):
        results = {}
        for executor in ("serial", "threads", "processes"):
            grid = ParameterGrid(name=name, **grid_kwargs)
            results[executor] = CampaignRunner(
                trial_fn, base_seed=7, workers=2, executor=executor,
                chunk_size=1, **runner_kwargs).run(grid)
        return results

    @pytest.mark.parametrize("other", ["threads", "processes"])
    def test_e2_grid_records_bit_identical(self, other):
        results = self._run_all(pool_attack_trial, E2_GRID_KWARGS,
                                "exec_e2", trials_per_point=2)
        serial = results["serial"]
        assert serial.mode == "serial"
        assert results[other].mode == f"{other}:2"
        assert serial.records == results[other].records
        assert (serial.to_json()["results"]
                == results[other].to_json()["results"])

    @pytest.mark.parametrize("other", ["threads", "processes"])
    def test_p1_population_records_bit_identical(self, other):
        results = self._run_all(population_trial, P1_GRID_KWARGS, "exec_p1")
        serial = results["serial"]
        assert serial.records == results[other].records
        assert (serial.to_json()["results"]
                == results[other].to_json()["results"])

    def test_telemetry_trials_isolated_across_threads(self):
        """Concurrent thread trials each scope their own registry; the
        spec_trial path attaches per-trial snapshots that must match a
        serial run's byte for byte."""
        from repro.campaign.trials import spec_trial
        from repro.scenarios.spec import population_spec

        grid_kwargs = dict(
            axes={"provider.corrupted": (0, 1)},
            fixed={"telemetry.enabled": True},
        )

        def run(executor):
            grid = ParameterGrid.over_spec(
                population_spec(num_clients=10, rounds=2),
                name="exec_telemetry", **grid_kwargs)
            return CampaignRunner(spec_trial, base_seed=5, workers=2,
                                  executor=executor, chunk_size=1,
                                  include_telemetry=True).run(grid)

        serial, threaded = run("serial"), run("threads")
        assert threaded.mode == "threads:2"
        snapshots = [r.telemetry for r in serial.records]
        assert any(s is not None for s in snapshots)
        assert snapshots == [r.telemetry for r in threaded.records]


class TestAdaptiveSelection:
    def test_tiny_sweep_adapts_to_serial(self):
        """The regression scenario: a small grid with an explicit
        worker budget must not pay pool startup."""
        grid = ParameterGrid({"offset": (0.0, 1.0, 2.0)}, name="adapt-tiny")
        result = CampaignRunner(noisy_trial, trials_per_point=2,
                                base_seed=3, workers=4).run(grid)
        assert result.mode == "serial"
        assert result.executor == "adaptive"

    def test_forced_serial_ignores_workers(self):
        grid = ParameterGrid({"offset": (0.0, 1.0)}, name="forced-serial")
        result = CampaignRunner(noisy_trial, workers=8,
                                executor="serial").run(grid)
        assert result.mode == "serial"

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            CampaignRunner(noisy_trial, executor="fork-bomb")

    def test_adaptive_probe_record_is_first_spec(self):
        """The calibration probe is spec[0] run in-process — its record
        lands like any other, so adaptivity never changes the records."""
        grid = ParameterGrid({"offset": (0.0, 1.0)}, name="probe")
        adaptive = CampaignRunner(noisy_trial, trials_per_point=2,
                                  base_seed=11, workers=4).run(grid)
        serial = CampaignRunner(noisy_trial, trials_per_point=2,
                                base_seed=11, executor="serial").run(grid)
        assert adaptive.records == serial.records
