"""Tests for record aggregation and campaign JSON export."""

import json
import math

import pytest

from repro.campaign import (
    Aggregator,
    CampaignRunner,
    ParameterGrid,
    TrialRecord,
)
from repro.core.policy import DualStackPolicy
from repro.util.stats import confidence_interval, mean, stddev


def record(point, trial, **metrics):
    return TrialRecord(point_index=point, point_key=f"k={point}",
                       params={"k": point}, trial=trial,
                       seed=point * 100 + trial, metrics=metrics)


def fixed_trial(params, seed):
    return {"value": float(params["k"])}


class TestAggregator:
    def test_moments_match_raw_statistics(self):
        values = [1.0, 2.0, 4.0, 8.0, 16.0]
        aggregator = Aggregator()
        for trial, value in enumerate(values):
            aggregator.add(record(0, trial, value=value))
        summary = aggregator.summaries()[0]["value"]
        assert summary.count == len(values)
        assert summary.mean == pytest.approx(mean(values))
        assert summary.stddev == pytest.approx(stddev(values))
        assert summary.stderr == pytest.approx(
            stddev(values) / math.sqrt(len(values)))
        assert summary.minimum == 1.0
        assert summary.maximum == 16.0

    def test_ci_matches_stats_confidence_interval(self):
        values = [3.0, 5.0, 7.0, 9.0]
        aggregator = Aggregator()
        for trial, value in enumerate(values):
            aggregator.add(record(0, trial, value=value))
        summary = aggregator.summaries()[0]["value"]
        low, high = confidence_interval(values)
        assert summary.ci_low == pytest.approx(low)
        assert summary.ci_high == pytest.approx(high)

    def test_singleton_ci_degenerates(self):
        aggregator = Aggregator()
        aggregator.add(record(0, 0, value=5.0))
        summary = aggregator.summaries()[0]["value"]
        assert (summary.ci_low, summary.ci_high) == (5.0, 5.0)
        assert summary.stderr == 0.0

    def test_points_keep_expansion_order(self):
        aggregator = Aggregator()
        for point in (2, 0, 1):
            aggregator.add(record(point, 0, value=1.0))
        assert [s.point_index for s in aggregator.summaries()] == [0, 1, 2]

    def test_multiple_metrics_per_point(self):
        aggregator = Aggregator()
        aggregator.add(record(0, 0, a=1.0, b=10.0))
        aggregator.add(record(0, 1, a=3.0, b=30.0))
        summary = aggregator.summaries()[0]
        assert summary["a"].mean == 2.0
        assert summary["b"].mean == 20.0
        assert summary.trials == 2

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            Aggregator(confidence=1.5)


class TestResultLookup:
    def grid_result(self):
        grid = ParameterGrid({"k": (1, 2, 3)}, name="lookup")
        return CampaignRunner(fixed_trial, trials_per_point=2,
                              base_seed=4).run(grid)

    def test_summary_by_params(self):
        result = self.grid_result()
        assert result.summary(k=2)["value"].mean == 2.0

    def test_metric_shorthand(self):
        result = self.grid_result()
        assert result.metric("value", k=3).mean == 3.0

    def test_no_match_raises(self):
        result = self.grid_result()
        with pytest.raises(KeyError):
            result.summary(k=99)

    def test_ambiguous_match_raises(self):
        result = self.grid_result()
        with pytest.raises(KeyError):
            result.summary()


class TestJsonExport:
    def test_shape(self):
        grid = ParameterGrid({"k": (1, 2)}, fixed={"shared": "x"},
                             name="export")
        result = CampaignRunner(fixed_trial, trials_per_point=3,
                                base_seed=9).run(grid)
        payload = result.to_json()
        assert payload["campaign"] == "export"
        assert payload["seed"] == 9
        assert payload["trials_per_point"] == 3
        assert len(payload["results"]) == 2
        entry = payload["results"][0]
        assert entry["params"] == {"shared": "x", "k": 1}
        assert entry["trials"] == 3
        assert set(entry["metrics"]["value"]) == {
            "count", "mean", "stddev", "stderr", "ci95", "min", "max"}

    def test_json_serialisable_with_rich_params(self):
        grid = ParameterGrid(
            {"k": (1,)},
            fixed={"policy": DualStackPolicy.UNION,
                   "forged": ("203.0.113.1", "203.0.113.2")})
        result = CampaignRunner(fixed_trial).run(grid)
        text = json.dumps(result.to_json())
        decoded = json.loads(text)
        params = decoded["results"][0]["params"]
        assert params["policy"] == "union"
        assert params["forged"] == ["203.0.113.1", "203.0.113.2"]

    def test_write_json_roundtrip(self, tmp_path):
        grid = ParameterGrid({"k": (1, 2)}, name="disk")
        result = CampaignRunner(fixed_trial, base_seed=1).run(grid)
        path = result.write_json(tmp_path / "nested" / "disk.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(result.to_json(), sort_keys=True))
