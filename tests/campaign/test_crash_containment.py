"""Trial crash containment: one raising trial must not sink the sweep."""

import json
import os

import pytest

from repro.campaign import CampaignRunner, ParameterGrid

GRID_AXES = {"offset": (0.0, 10.0, 100.0)}


def fragile_trial(params, seed):
    """Deterministically explodes at one grid point."""
    if params["offset"] == 10.0:
        raise ValueError(f"synthetic failure at offset={params['offset']}")
    return {"value": params["offset"] + seed}


def sturdy_trial(params, seed):
    return {"value": params["offset"] + seed}


def env_gated_trial(params, seed):
    """Fails at offset=10 only while CRASH_TEST_FAIL is set — same
    source both runs, so the journal fingerprint matches across the
    broken run and the fixed rerun."""
    if params["offset"] == 10.0 and os.environ.get("CRASH_TEST_FAIL"):
        raise ValueError("synthetic transient failure")
    return {"value": params["offset"] + seed}


def grid(name="crash-test"):
    return ParameterGrid(GRID_AXES, name=name)


def run(trial_fn, **kwargs):
    defaults = dict(trials_per_point=2, base_seed=5, executor="serial")
    defaults.update(kwargs)
    return CampaignRunner(trial_fn, **defaults).run(grid())


class TestContainment:
    def test_sweep_completes_with_error_records(self):
        result = run(fragile_trial)
        assert len(result.records) == 6          # every spec has a record
        errored = [r for r in result.records if r.error is not None]
        assert len(errored) == 2                 # both trials at offset=10
        for record in errored:
            assert record.params["offset"] == 10.0
            assert record.metrics == {}
            assert record.error.startswith("ValueError: synthetic failure")
        assert result.failed == 2
        assert result.to_json()["failed"] == 2

    def test_healthy_points_keep_their_metrics(self):
        result = run(fragile_trial)
        clean = run(sturdy_trial)
        keep = {(r.point_key, r.trial) for r in result.records
                if r.error is None}
        expected = {r for r in clean.records
                    if (r.point_key, r.trial) in keep}
        assert {r for r in result.records if r.error is None} == expected

    def test_summaries_exclude_errored_trials(self):
        result = run(fragile_trial)
        keys = {summary.point_key for summary in result.summaries}
        assert not any("offset=10.0" in key for key in keys)
        # The healthy points summarize exactly their trial count.
        for summary in result.summaries:
            assert summary["value"].count == 2

    def test_no_failures_means_failed_zero(self):
        result = run(sturdy_trial)
        assert result.failed == 0
        assert all(r.error is None for r in result.records)

    def test_process_pool_contains_crashes_too(self):
        result = run(fragile_trial, executor="processes", workers=2)
        assert result.failed == 2
        assert len(result.records) == 6

    def test_keyboard_interrupt_is_not_contained(self):
        def impatient_trial(params, seed):
            raise KeyboardInterrupt
        with pytest.raises(KeyboardInterrupt):
            run(impatient_trial)


class TestResumeAndCacheInteraction:
    def test_errored_trials_stay_out_of_the_journal(self, tmp_path):
        result = run(fragile_trial, journal_dir=tmp_path)
        assert result.failed == 2
        # The journal survives a failed sweep, holding successes only,
        # so a rerun after the bug is fixed re-executes the failures.
        (journal_file,) = tmp_path.glob("*.jsonl")
        journaled = [json.loads(line)
                     for line in journal_file.read_text().splitlines()
                     if line.strip()]
        assert len(journaled) == 4
        assert all("offset=10.0" not in entry["point_key"]
                   for entry in journaled)

    def test_fixed_trial_resumes_and_reexecutes_only_failures(self, tmp_path):
        os.environ["CRASH_TEST_FAIL"] = "1"
        try:
            broken = run(env_gated_trial, journal_dir=tmp_path)
        finally:
            os.environ.pop("CRASH_TEST_FAIL", None)
        assert broken.failed == 2
        result = run(env_gated_trial, journal_dir=tmp_path)
        assert result.failed == 0
        assert result.resumed == 4               # the journaled successes
        assert len(result.records) == 6
        assert result.records == run(env_gated_trial).records
        assert not list(tmp_path.glob("*.jsonl"))

    def test_failed_sweep_writes_no_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run(fragile_trial, cache_dir=cache_dir)
        assert first.failed == 2
        again = run(fragile_trial, cache_dir=cache_dir)
        assert again.mode != "cached"            # no stale error replay
