"""Tests for grid-over-spec sweeps: ``ParameterGrid.over_spec``,
``spec_trial``, and the telemetry/cache plumbing they ride on."""

import pickle

import pytest

from repro.campaign import CampaignRunner, ParameterGrid, spec_trial
from repro.campaign.grid import point_key
from repro.scenarios.spec import (
    ScenarioSpec,
    get_path,
    pool_spec,
    population_spec,
    set_path,
)


class TestOverSpecExpansion:
    def test_odometer_order_with_dotted_axes(self):
        grid = ParameterGrid.over_spec(
            population_spec(),
            {"fleet.size": (10, 20), "provider.corrupted": (0, 1)})
        keys = [p.key for p in grid.points()]
        assert keys == [
            "fleet.size=10,provider.corrupted=0",
            "fleet.size=10,provider.corrupted=1",
            "fleet.size=20,provider.corrupted=0",
            "fleet.size=20,provider.corrupted=1",
        ]

    def test_expansion_is_deterministic(self):
        def build():
            return ParameterGrid.over_spec(
                population_spec(),
                {"fleet.size": (10, 20), "network.fault.loss_rate":
                 (0.0, 0.25)},
                fixed={"fleet.rounds": 2})
        first = [(p.key, p.params["spec"]) for p in build().points()]
        second = [(p.key, p.params["spec"]) for p in build().points()]
        assert first == second

    def test_points_carry_applied_specs(self):
        base = population_spec()
        grid = ParameterGrid.over_spec(
            base, {"provider.corrupted": (0, 2)},
            fixed={"fleet.size": 77})
        for point in grid.points():
            spec = point.params["spec"]
            assert isinstance(spec, ScenarioSpec)
            assert spec.fleet.size == 77
            assert spec.provider.corrupted == point.params[
                "provider.corrupted"]
        # The base spec is never mutated by expansion.
        assert base.fleet.size == 50 and base.provider.corrupted == 0

    def test_fixed_paths_do_not_enter_point_keys(self):
        grid = ParameterGrid.over_spec(
            population_spec(), {"provider.corrupted": (1,)},
            fixed={"fleet.size": 5})
        assert grid.points()[0].key == "provider.corrupted=1"

    def test_unknown_path_rejected_at_declaration(self):
        with pytest.raises(Exception, match="no"):
            ParameterGrid.over_spec(pool_spec(), {"fleet.size": (1,)})

    def test_spec_key_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            ParameterGrid.over_spec(pool_spec(), {"spec": (1,)})

    def test_predicates_still_apply(self):
        grid = ParameterGrid.over_spec(
            population_spec(),
            {"provider.count": (3, 5), "provider.corrupted": (0, 4)},
        ).where(lambda p: p["provider.corrupted"] <= p["provider.count"])
        assert len(grid.points()) == 3

    def test_points_pickle_for_worker_sharding(self):
        grid = ParameterGrid.over_spec(
            population_spec(), {"fleet.size": (10,)})
        points = grid.points()
        assert pickle.loads(pickle.dumps(points))[0].params["spec"] == (
            points[0].params["spec"])


class TestSpecTrial:
    def test_requires_spec_param(self):
        with pytest.raises(ValueError, match="spec"):
            spec_trial({"fleet.size": 10}, seed=1)

    def test_rejects_param_that_disagrees_with_spec(self):
        spec = population_spec(num_clients=10)
        with pytest.raises(ValueError, match="fleet.size"):
            spec_trial({"spec": spec, "fleet.size": 99}, seed=1)

    def test_rejects_unknown_dotted_path(self):
        with pytest.raises(Exception, match="no"):
            spec_trial({"spec": pool_spec(), "pool.sizes": 3}, seed=1)

    def test_accepts_spec_as_dict(self):
        spec = pool_spec(num_providers=3)
        metrics = spec_trial({"spec": spec.to_dict()}, seed=4)
        assert metrics["ok"] == 1.0
        assert metrics["pool_size"] > 0

    def test_single_client_spec_honours_combine_policy(self):
        empty = set_path(pool_spec(), "provider.behavior", "empty")
        empty = set_path(empty, "provider.corrupted", 1)
        strict = spec_trial({"spec": empty}, seed=400)
        quorum = spec_trial({"spec": set_path(empty, "pool.min_answers", 2)},
                            seed=400)
        assert strict["ok"] == 0.0          # fn.2's documented DoS
        assert quorum["ok"] == 1.0          # the availability extension
        assert quorum["degraded"] == 1.0

    def test_population_spec_returns_metrics_and_telemetry(self):
        spec = population_spec(num_clients=8, rounds=2)
        metrics, telemetry = spec_trial({"spec": spec}, seed=7)
        assert metrics["rounds"] == 16.0
        assert '"pop.rounds"' in telemetry

    def test_attacker_share_scores_synthesised_forged_addresses(self):
        # corrupted>0 with no explicit forged: the compiler synthesises
        # the 203.0.113.0/24 block, and the metrics must score against
        # exactly that set — not the spec's empty tuple.
        spec = set_path(pool_spec(), "provider.corrupted", 1)
        metrics = spec_trial({"spec": spec}, seed=4)
        assert metrics["ok"] == 1.0
        assert metrics["attacker_share"] == pytest.approx(1 / 3, abs=0.01)
        assert metrics["benign_fraction"] == pytest.approx(2 / 3, abs=0.01)

    def test_compromise_attack_installer_matches_provider_corruption(self):
        from repro.scenarios.spec import AttackSpec
        # The registry path must install the same EMPTY semantics the
        # ProviderSpec path does: fn.2's documented DoS.
        via_attack = set_path(pool_spec(), "attacks", (AttackSpec.of(
            "compromise", count=1, behavior="empty"),))
        via_provider = set_path(
            set_path(pool_spec(), "provider.corrupted", 1),
            "provider.behavior", "empty")
        assert spec_trial({"spec": via_attack}, seed=400)["ok"] == 0.0
        assert spec_trial({"spec": via_provider}, seed=400)["ok"] == 0.0


class TestRunnerIntegration:
    GRID_AXES = {"provider.corrupted": (0, 1)}

    def _runner(self, tmp_path, **kwargs):
        return CampaignRunner(spec_trial, base_seed=11, workers=0,
                              cache_dir=tmp_path / "cache",
                              include_telemetry=True, **kwargs)

    def _grid(self):
        return ParameterGrid.over_spec(
            population_spec(num_clients=6, rounds=2), self.GRID_AXES,
            name="spec-grid-test")

    def test_results_json_is_self_describing(self, tmp_path):
        result = self._runner(tmp_path).run(self._grid())
        payload = result.to_json()
        entry = payload["results"][0]
        assert entry["params"]["spec"]["fleet"]["size"] == 6
        assert "telemetry" in entry
        snapshot = entry["telemetry"]["0"]
        assert snapshot["counter"]["pop.rounds"] == 12

    def test_cache_round_trip_preserves_telemetry(self, tmp_path):
        runner = self._runner(tmp_path)
        first = runner.run(self._grid())
        again = runner.run(self._grid())
        assert again.mode == "cached"
        assert ([r.metrics for r in again.records]
                == [r.metrics for r in first.records])
        assert ([r.telemetry for r in again.records]
                == [r.telemetry for r in first.records])
        assert again.summaries[0].telemetry == first.summaries[0].telemetry

    def test_telemetry_excluded_by_default(self, tmp_path):
        runner = CampaignRunner(spec_trial, base_seed=11, workers=0)
        result = runner.run(self._grid())
        assert result.summaries[0].telemetry == {}
        assert "telemetry" not in result.to_json()["results"][0]

    def test_metric_lookup_by_dotted_subset(self, tmp_path):
        result = self._runner(tmp_path).run(self._grid())
        clean = result.metric("victim_fraction",
                              **{"provider.corrupted": 0}).mean
        assert clean == 0.0


def test_point_key_renders_dotted_names_stably():
    assert point_key({"fleet.size": 10, "network.fault.loss_rate": 0.5}) == (
        "fleet.size=10,network.fault.loss_rate=0.5")


def test_get_path_agrees_with_grid_application():
    grid = ParameterGrid.over_spec(
        population_spec(), {"network.fault.loss_rate": (0.125,)})
    point = grid.points()[0]
    assert get_path(point.params["spec"],
                    "network.fault.loss_rate") == 0.125
