"""Campaign progress reporting and content-hash result caching."""

import random

import pytest

from repro.campaign import CampaignProgress, CampaignRunner, ParameterGrid


def noisy_trial(params, seed):
    rng = random.Random(seed)
    return {"value": params["offset"] + rng.random()}


def other_trial(params, seed):
    return {"value": 0.0}


GRID_AXES = {"offset": (0.0, 10.0, 100.0)}


class TestProgress:
    def test_one_tick_per_trial_with_eta(self):
        ticks = []
        runner = CampaignRunner(noisy_trial, trials_per_point=2, workers=0,
                                on_progress=ticks.append)
        runner.run(ParameterGrid(GRID_AXES, name="progress-test"))
        assert [tick.completed for tick in ticks] == [1, 2, 3, 4, 5, 6]
        assert all(tick.total == 6 for tick in ticks)
        assert all(not tick.cached for tick in ticks)
        assert ticks[-1].fraction == 1.0
        assert ticks[-1].eta_s == pytest.approx(0.0, abs=1e-6)
        assert all(tick.eta_s is not None for tick in ticks)

    def test_parallel_path_reports_progress_too(self):
        ticks = []
        runner = CampaignRunner(noisy_trial, trials_per_point=2, workers=2,
                                executor="processes")
        result = runner.run(ParameterGrid(GRID_AXES, name="progress-mp"),
                            on_progress=ticks.append)
        if result.mode.startswith("processes"):
            assert [tick.completed for tick in ticks] == [1, 2, 3, 4, 5, 6]

    def test_progress_dataclass(self):
        tick = CampaignProgress(name="x", completed=0, total=0,
                                elapsed_s=0.0, eta_s=None)
        assert tick.fraction == 1.0


class TestResultCache:
    def _grid(self, name="cache-test"):
        return ParameterGrid(GRID_AXES, name=name)

    def test_rerun_is_served_from_cache(self, tmp_path):
        runner = CampaignRunner(noisy_trial, trials_per_point=3, workers=0,
                                base_seed=9, cache_dir=tmp_path)
        first = runner.run(self._grid())
        assert first.mode == "serial"
        assert list(tmp_path.glob("*.json"))

        again = runner.run(self._grid())
        assert again.mode == "cached"
        assert again.records == first.records
        assert again.summaries == first.summaries

    def test_cache_hit_reports_cached_progress(self, tmp_path):
        runner = CampaignRunner(noisy_trial, workers=0, cache_dir=tmp_path)
        runner.run(self._grid())
        ticks = []
        runner.run(self._grid(), on_progress=ticks.append)
        assert len(ticks) == 1
        assert ticks[0].cached
        assert ticks[0].completed == ticks[0].total == 3

    def test_cache_hit_is_logged(self, tmp_path, caplog):
        runner = CampaignRunner(noisy_trial, workers=0, cache_dir=tmp_path)
        runner.run(self._grid())
        with caplog.at_level("INFO", logger="repro.campaign"):
            runner.run(self._grid())
        assert any("cache hit" in record.message for record in caplog.records)

    def test_base_seed_change_invalidates(self, tmp_path):
        CampaignRunner(noisy_trial, workers=0, base_seed=1,
                       cache_dir=tmp_path).run(self._grid())
        result = CampaignRunner(noisy_trial, workers=0, base_seed=2,
                                cache_dir=tmp_path).run(self._grid())
        assert result.mode == "serial"

    def test_grid_change_invalidates(self, tmp_path):
        runner = CampaignRunner(noisy_trial, workers=0, cache_dir=tmp_path)
        runner.run(self._grid())
        grown = ParameterGrid({"offset": (0.0, 10.0, 100.0, 1000.0)},
                              name="cache-test")
        assert runner.run(grown).mode == "serial"

    def test_source_tree_change_invalidates(self, tmp_path, monkeypatch):
        """The fingerprint keys on the whole repro source tree, so an
        edit anywhere in the stack forces recomputation."""
        import repro.campaign.runner as runner_module
        runner = CampaignRunner(noisy_trial, workers=0, cache_dir=tmp_path)
        runner.run(self._grid())
        monkeypatch.setattr(runner_module, "_source_fingerprint_cache",
                            "simulated-code-edit")
        assert runner.run(self._grid()).mode == "serial"

    def test_trial_fn_change_invalidates(self, tmp_path):
        CampaignRunner(noisy_trial, workers=0,
                       cache_dir=tmp_path).run(self._grid())
        result = CampaignRunner(other_trial, workers=0,
                                cache_dir=tmp_path).run(self._grid())
        assert result.mode == "serial"

    def test_corrupt_cache_file_recomputes(self, tmp_path):
        runner = CampaignRunner(noisy_trial, workers=0, cache_dir=tmp_path)
        runner.run(self._grid())
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        assert runner.run(self._grid()).mode == "serial"

    def test_cached_records_keep_live_params(self, tmp_path):
        """Cached runs rebuild records from the live grid, so params
        keep their Python types (enums, tuples) instead of JSON's."""
        runner = CampaignRunner(noisy_trial, workers=0, cache_dir=tmp_path)
        first = runner.run(self._grid())
        again = runner.run(self._grid())
        assert again.summary(offset=10.0)["value"].mean == \
            first.summary(offset=10.0)["value"].mean

    def test_no_cache_dir_never_writes(self, tmp_path):
        runner = CampaignRunner(noisy_trial, workers=0)
        runner.run(self._grid())
        assert not list(tmp_path.iterdir())
