"""CI-targeted adaptive sampling: budget goes where the variance is."""

import collections
import random

import pytest

from repro.campaign import AdaptiveSampling, CampaignRunner, ParameterGrid


def spread_trial(params, seed):
    """Noise scale is an axis: spread=0 points are fully deterministic,
    large-spread points need many trials to pin the mean down."""
    rng = random.Random(seed)
    return {"value": 100.0 + rng.gauss(0.0, params["spread"]),
            "constant": 1.0}


def trials_per_point(result):
    counts = collections.Counter(r.point_key for r in result.records)
    return dict(counts)


GRID = dict(axes={"spread": (0.0, 50.0)}, name="adaptive-spread")


class TestAllocation:
    def test_noisy_point_gets_more_trials_than_quiet_point(self):
        runner = CampaignRunner(
            spread_trial, trials_per_point=2, base_seed=17,
            executor="serial",
            adaptive=AdaptiveSampling(max_trials=64, ci_width=5.0,
                                      metric="value"))
        result = runner.run(ParameterGrid(**GRID))
        counts = trials_per_point(result)
        assert counts["spread=0.0"] == 2          # converged at the floor
        assert counts["spread=50.0"] > counts["spread=0.0"]

    def test_max_trials_is_a_hard_cap(self):
        runner = CampaignRunner(
            spread_trial, trials_per_point=2, base_seed=17,
            executor="serial",
            adaptive=AdaptiveSampling(max_trials=8, ci_width=0.001,
                                      metric="value"))
        counts = trials_per_point(runner.run(ParameterGrid(**GRID)))
        assert counts["spread=50.0"] == 8         # unconverged but capped

    def test_floor_is_at_least_two_for_variance(self):
        """One sample can't estimate variance, so trials_per_point=1
        is lifted to 2 under adaptive sampling."""
        runner = CampaignRunner(
            spread_trial, trials_per_point=1, base_seed=17,
            executor="serial",
            adaptive=AdaptiveSampling(max_trials=4, ci_width=1e9))
        counts = trials_per_point(runner.run(ParameterGrid(**GRID)))
        assert set(counts.values()) == {2}

    def test_trial_indices_are_contiguous_per_point(self):
        runner = CampaignRunner(
            spread_trial, trials_per_point=2, base_seed=17,
            executor="serial",
            adaptive=AdaptiveSampling(max_trials=16, ci_width=10.0,
                                      metric="value"))
        result = runner.run(ParameterGrid(**GRID))
        by_point = collections.defaultdict(list)
        for record in result.records:
            by_point[record.point_key].append(record.trial)
        for trials in by_point.values():
            assert trials == list(range(len(trials)))

    def test_unwatched_metrics_do_not_block_convergence(self):
        """metric='constant' has zero variance everywhere, so every
        point converges at the floor regardless of 'value' noise."""
        runner = CampaignRunner(
            spread_trial, trials_per_point=3, base_seed=17,
            executor="serial",
            adaptive=AdaptiveSampling(max_trials=64, ci_width=0.5,
                                      metric="constant"))
        counts = trials_per_point(runner.run(ParameterGrid(**GRID)))
        assert set(counts.values()) == {3}

    def test_absent_metric_counts_as_converged(self):
        runner = CampaignRunner(
            spread_trial, trials_per_point=2, base_seed=17,
            executor="serial",
            adaptive=AdaptiveSampling(max_trials=64, ci_width=0.001,
                                      metric="no_such_metric"))
        counts = trials_per_point(runner.run(ParameterGrid(**GRID)))
        assert set(counts.values()) == {2}


class TestDeterminism:
    ADAPTIVE = AdaptiveSampling(max_trials=32, ci_width=8.0, metric="value")

    def _run(self, **kwargs):
        defaults = dict(trials_per_point=2, base_seed=23,
                        adaptive=self.ADAPTIVE)
        defaults.update(kwargs)
        return CampaignRunner(spread_trial, **defaults).run(
            ParameterGrid(**GRID))

    def test_reruns_are_bit_identical(self):
        first, second = self._run(executor="serial"), \
            self._run(executor="serial")
        assert first.records == second.records
        assert first.to_json()["results"] == second.to_json()["results"]

    @pytest.mark.parametrize("executor", ["threads", "processes"])
    def test_parallel_adaptive_equals_serial(self, executor):
        serial = self._run(executor="serial")
        parallel = self._run(executor=executor, workers=2, chunk_size=1)
        assert parallel.records == serial.records
        assert parallel.to_json()["results"] == serial.to_json()["results"]

    def test_adaptive_campaign_round_trips_the_cache(self, tmp_path):
        first = self._run(executor="serial", cache_dir=tmp_path)
        assert first.mode == "serial"
        again = self._run(executor="serial", cache_dir=tmp_path)
        assert again.mode == "cached"
        assert again.records == first.records
        assert again.to_json()["results"] == first.to_json()["results"]

    def test_adaptive_config_is_part_of_the_fingerprint(self, tmp_path):
        self._run(executor="serial", cache_dir=tmp_path)
        widened = AdaptiveSampling(max_trials=32, ci_width=16.0,
                                   metric="value")
        result = self._run(executor="serial", cache_dir=tmp_path,
                           adaptive=widened)
        assert result.mode == "serial"     # no stale cache hit

    def test_adaptive_campaign_journals_and_resumes(self, tmp_path):
        reference = self._run(executor="serial")
        result = self._run(executor="serial", journal_dir=tmp_path)
        assert result.records == reference.records
        assert not list(tmp_path.glob("*.jsonl"))


class TestValidation:
    def test_max_trials_below_two_rejected(self):
        with pytest.raises(ValueError, match="max_trials"):
            AdaptiveSampling(max_trials=1, ci_width=1.0)

    def test_non_positive_ci_width_rejected(self):
        with pytest.raises(ValueError, match="ci_width"):
            AdaptiveSampling(max_trials=4, ci_width=0.0)

    def test_max_trials_below_floor_rejected(self):
        with pytest.raises(ValueError, match="max_trials"):
            CampaignRunner(spread_trial, trials_per_point=10,
                           adaptive=AdaptiveSampling(max_trials=4,
                                                     ci_width=1.0))

    def test_wrong_adaptive_type_rejected(self):
        with pytest.raises(TypeError, match="AdaptiveSampling"):
            CampaignRunner(spread_trial, adaptive={"max_trials": 4})

    def test_next_batch_grows_by_half(self):
        policy = AdaptiveSampling(max_trials=100, ci_width=1.0)
        assert policy.next_batch(2) == 1
        assert policy.next_batch(10) == 5
        assert policy.next_batch(99) == 1      # clipped to remaining
        assert policy.next_batch(100) == 0
