"""Tests for the datagram model."""

from repro.netsim.address import Endpoint, ip
from repro.netsim.packet import Datagram


def make(payload=b"x", src_port=1000, dst_port=53):
    return Datagram(src=Endpoint(ip("10.0.0.1"), src_port),
                    dst=Endpoint(ip("10.0.0.2"), dst_port),
                    payload=payload)


class TestDatagram:
    def test_unique_packet_ids(self):
        ids = {make().packet_id for _ in range(100)}
        assert len(ids) == 100

    def test_size(self):
        assert make(payload=b"12345").size == 5

    def test_not_spoofed_by_default(self):
        assert make().spoofed is False

    def test_reply_template_swaps_endpoints(self):
        request = make()
        reply = request.reply_template(b"pong")
        assert reply.src == request.dst
        assert reply.dst == request.src
        assert reply.payload == b"pong"

    def test_with_payload_changes_id(self):
        original = make()
        rewritten = original.with_payload(b"tampered")
        assert rewritten.payload == b"tampered"
        assert rewritten.packet_id != original.packet_id
        assert rewritten.src == original.src
        assert rewritten.dst == original.dst

    def test_with_payload_preserves_spoofed_flag(self):
        spoofed = Datagram(src=Endpoint(ip("10.0.0.1"), 1),
                           dst=Endpoint(ip("10.0.0.2"), 53),
                           payload=b"x", spoofed=True)
        assert spoofed.with_payload(b"y").spoofed is True

    def test_frozen(self):
        import dataclasses
        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            make().payload = b"nope"
