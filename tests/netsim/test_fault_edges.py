"""Degenerate failure edges: total loss, dead hierarchies, storms at
downed hosts — the netsim must degrade into clean give-up signals, not
crashes or silent hangs."""

import pytest

from repro.dns.resolver import ResolveStatus, ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import FaultModel, LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.netsim.transport import RetryPolicy, Transport
from repro.telemetry.registry import MetricsRegistry, use_registry
from repro.telemetry.trace import Tracer, use_tracer
from repro.util.rng import RngRegistry

from tests.dns.conftest import build_dns_world

NS_HOSTS = ("root-ns", "org-ns", "ntp-ns")


def build_world(fault=None, telemetry=None, tracer=None):
    """Two hosts on one link, optionally faulted/instrumented. The
    internet and transport capture telemetry/tracing at construction,
    so everything is built inside the contexts."""
    registry = RngRegistry(1)
    simulator = Simulator()
    topology = Topology(registry)
    topology.add_link("a", "b", LinkProfile(latency=0.01))
    if fault is not None:
        topology.set_fault_model("a", "b", fault)

    import contextlib
    with contextlib.ExitStack() as stack:
        if telemetry is not None:
            stack.enter_context(use_registry(telemetry))
        if tracer is not None:
            stack.enter_context(use_tracer(tracer))
        internet = Internet(simulator, topology, registry)
        client = internet.add_host(
            Host("client", "a", [ip("10.0.0.1")],
                 rng=registry.stream("client-ports")))
        internet.add_host(Host("server", "b", [ip("10.0.0.2")]))
        transport = Transport(client, simulator,
                              rng=registry.stream("txid"))
    return simulator, internet, transport


def run_exchange(simulator, transport, policy):
    reports = []
    transport.exchange(
        Endpoint(IPAddress("10.0.0.2"), 7),
        build_request=lambda attempt: b"ping",
        classify=lambda datagram, attempt: datagram.payload,
        on_complete=reports.append, policy=policy, label="edge-probe")
    simulator.run()
    (report,) = reports
    return report


class TestTotalLoss:
    def test_loss_rate_one_drops_every_datagram(self):
        telemetry = MetricsRegistry()
        simulator, internet, transport = build_world(
            fault=FaultModel(loss_rate=1.0), telemetry=telemetry)
        report = run_exchange(simulator, transport,
                              RetryPolicy(timeout=0.5, retries=2))
        assert report.timed_out
        assert report.attempts == 3
        counters = telemetry.snapshot()["counter"]
        drops = sum(value for key, value in counters.items()
                    if key.startswith("net.drops"))
        assert drops == 3                     # one per attempt, all lost
        assert counters["transport.exhausted{label=edge-probe}"] == 1
        assert counters["transport.timeouts{label=edge-probe}"] == 1

    def test_exhausted_exchange_span_carries_gave_up(self):
        tracer = Tracer()
        simulator, internet, transport = build_world(
            fault=FaultModel(loss_rate=1.0), tracer=tracer)
        run_exchange(simulator, transport,
                     RetryPolicy(timeout=0.5, retries=1))
        (span,) = [s for s in tracer.spans
                   if s.name == "transport.exchange"]
        assert span.attrs["gave_up"] is True

    def test_successful_exchange_has_no_gave_up_or_exhausted(self):
        telemetry = MetricsRegistry()
        tracer = Tracer()
        simulator, internet, transport = build_world(
            telemetry=telemetry, tracer=tracer)
        socket = internet.host_for_address(IPAddress("10.0.0.2")).bind(7)
        socket.on_datagram(lambda datagram: socket.reply(datagram, b"pong"))
        report = run_exchange(simulator, transport,
                              RetryPolicy(timeout=0.5, retries=1))
        assert report.value == b"pong"
        counters = telemetry.snapshot()["counter"]
        assert "transport.exhausted{label=edge-probe}" not in counters
        clean = [s for s in tracer.spans
                 if s.name == "transport.exchange"
                 and not (s.attrs or {}).get("timed_out")]
        assert clean and all("gave_up" not in (s.attrs or {})
                             for s in clean)


class TestDeadHierarchy:
    def resolve(self, world, qname="pool.ntppool.org"):
        results = []
        world.resolver.resolve(qname, RRType.A, results.append)
        world.simulator.run()
        (outcome,) = results
        return outcome

    def fast_config(self):
        return ResolverConfig(query_timeout=0.5, max_retries_per_server=0,
                              retry_backoff=1.0)

    def test_every_ns_down_yields_servfail(self):
        world = build_dns_world(resolver_config=self.fast_config())
        for name in NS_HOSTS:
            world.internet.set_host_down(name)
        outcome = self.resolve(world)
        assert outcome.status is ResolveStatus.SERVFAIL
        assert world.resolver.stats.timeouts > 0

    def test_servfail_during_outage_is_not_negatively_cached(self):
        world = build_dns_world(resolver_config=self.fast_config())
        for name in NS_HOSTS:
            world.internet.set_host_down(name)
        assert self.resolve(world).status is ResolveStatus.SERVFAIL
        # Recovery: the dead-hierarchy SERVFAIL must not have poisoned
        # the cache with a negative entry that outlives the outage.
        for name in NS_HOSTS:
            world.internet.set_host_up(name)
        outcome = self.resolve(world)
        assert outcome.status is ResolveStatus.SUCCESS
        assert outcome.records


class TestStormAtDownedHost:
    def test_duplicate_storm_to_downed_host_just_drops(self):
        telemetry = MetricsRegistry()
        simulator, internet, transport = build_world(
            fault=FaultModel(duplicate_rate=1.0), telemetry=telemetry)
        internet.set_host_down("server")
        report = run_exchange(simulator, transport,
                              RetryPolicy(timeout=0.5, retries=3))
        assert report.timed_out
        assert report.attempts == 4
        counters = telemetry.snapshot()["counter"]
        host_down = sum(value for key, value in counters.items()
                        if key.startswith("net.drops")
                        and "host-down" in key)
        assert host_down >= report.attempts
