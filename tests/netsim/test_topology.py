"""Tests for the routed topology."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.link import LinkProfile
from repro.netsim.topology import RoutingError, Topology
from repro.util.rng import RngRegistry


def simple_line() -> Topology:
    """a -- b -- c with uniform links."""
    topo = Topology(RngRegistry(1))
    topo.add_link("a", "b", LinkProfile(latency=0.01))
    topo.add_link("b", "c", LinkProfile(latency=0.01))
    return topo


class TestLinkProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkProfile(latency=-1)
        with pytest.raises(ValueError):
            LinkProfile(loss=1.5)

    def test_presets(self):
        assert LinkProfile.lan().latency < LinkProfile.metro().latency
        assert LinkProfile.metro().latency < LinkProfile.continental().latency
        assert LinkProfile.continental().latency < LinkProfile.transoceanic().latency

    def test_lossy(self):
        assert LinkProfile.lossy(0.3).loss == 0.3


class TestTopologyBasics:
    def test_add_link_creates_nodes(self):
        topo = simple_line()
        assert topo.nodes == ["a", "b", "c"]

    def test_duplicate_link_rejected(self):
        topo = simple_line()
        with pytest.raises(ValueError):
            topo.add_link("b", "a", LinkProfile())

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_link("a", "a", LinkProfile())

    def test_link_between_is_direction_agnostic(self):
        topo = simple_line()
        assert topo.link_between("a", "b") is topo.link_between("b", "a")

    def test_remove_link(self):
        topo = simple_line()
        topo.remove_link("a", "b")
        with pytest.raises(RoutingError):
            topo.route("a", "c")

    def test_remove_missing_link_raises(self):
        topo = simple_line()
        with pytest.raises(KeyError):
            topo.remove_link("a", "c")


class TestRouting:
    def test_route_is_link_sequence(self):
        topo = simple_line()
        names = [link.name for link in topo.route("a", "c")]
        assert names == ["a--b", "b--c"]

    def test_route_to_self_is_empty(self):
        topo = simple_line()
        assert topo.route("a", "a") == []

    def test_route_nodes(self):
        topo = simple_line()
        assert topo.route_nodes("a", "c") == ["a", "b", "c"]

    def test_unknown_node_raises(self):
        topo = simple_line()
        with pytest.raises(RoutingError):
            topo.route("a", "zz")

    def test_prefers_lower_latency_path(self):
        topo = Topology(RngRegistry(1))
        # Two paths a->d: through fast b (2x10ms) or direct slow (50ms).
        topo.add_link("a", "b", LinkProfile(latency=0.010))
        topo.add_link("b", "d", LinkProfile(latency=0.010))
        topo.add_link("a", "d", LinkProfile(latency=0.050))
        names = [link.name for link in topo.route("a", "d")]
        assert names == ["a--b", "b--d"]

    def test_expected_latency_sums_hops(self):
        topo = simple_line()
        assert topo.expected_latency("a", "c") == pytest.approx(0.02)

    def test_route_cache_invalidated_on_change(self):
        topo = simple_line()
        assert len(topo.route("a", "c")) == 2
        topo.add_link("a", "c", LinkProfile(latency=0.001))
        assert len(topo.route("a", "c")) == 1


class TestPrefabTopologies:
    def test_star(self):
        topo = Topology.star("hub", ["x", "y", "z"])
        assert len(topo.route("x", "y")) == 2
        assert len(topo.route("x", "hub")) == 1

    def test_global_backbone_fully_connected(self):
        topo = Topology.global_backbone()
        for src in topo.nodes:
            for dst in topo.nodes:
                topo.route(src, dst)  # must not raise

    def test_global_backbone_region_names(self):
        topo = Topology.global_backbone()
        assert "eu-west" in topo.nodes
        assert "us-east" in topo.nodes

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=25),
           st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=1000))
    def test_random_mesh_is_connected(self, nodes, extra, seed):
        topo = Topology.random_mesh(nodes, extra, seed)
        names = topo.nodes
        for dst in names:
            topo.route(names[0], dst)  # must not raise

    def test_random_mesh_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            Topology.random_mesh(0, 0, 1)


class TestLinkSampling:
    def test_no_loss_never_drops(self):
        topo = simple_line()
        link = topo.link_between("a", "b")
        assert not any(link.sample_drop() for _ in range(100))

    def test_full_loss_always_drops(self):
        topo = Topology(RngRegistry(1))
        link = topo.add_link("a", "b", LinkProfile(loss=1.0))
        assert all(link.sample_drop() for _ in range(10))

    def test_delay_at_least_latency(self):
        topo = Topology(RngRegistry(1))
        link = topo.add_link("a", "b", LinkProfile(latency=0.02, jitter=0.005))
        for _ in range(50):
            delay = link.sample_delay()
            assert 0.02 <= delay <= 0.025

    def test_accounting(self):
        topo = simple_line()
        link = topo.link_between("a", "b")
        link.account(100, dropped=False)
        link.account(50, dropped=True)
        assert link.packets_carried == 2
        assert link.packets_dropped == 1
        assert link.bytes_carried == 150
