"""FaultModel semantics and determinism."""

import pytest

from repro.campaign import CampaignRunner, ParameterGrid, pool_attack_trial
from repro.netsim.address import Endpoint, IPAddress, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import FaultModel, LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.util.rng import RngRegistry


class TestFaultModelBasics:
    def test_inactive_by_default(self):
        assert not FaultModel().active
        assert FaultModel(loss_rate=0.1).active
        assert FaultModel(jitter_s=0.01).active
        assert FaultModel(reorder_window=0.05).active
        assert FaultModel(duplicate_rate=0.1).active

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(jitter_s=-0.1)
        with pytest.raises(ValueError):
            FaultModel(reorder_rate=-0.2)

    def test_compose_independent_probabilities(self):
        combined = FaultModel(loss_rate=0.5, jitter_s=0.01).compose(
            FaultModel(loss_rate=0.5, jitter_s=0.02, duplicate_rate=0.1))
        assert combined.loss_rate == pytest.approx(0.75)
        assert combined.jitter_s == pytest.approx(0.03)
        assert combined.duplicate_rate == pytest.approx(0.1)

    def test_compose_with_defaults_is_identity(self):
        """An all-defaults model must not distort the other side's
        dependent knobs (reorder_rate, duplicate_gap_s)."""
        model = FaultModel(loss_rate=0.1, jitter_s=0.005,
                           reorder_window=0.05, reorder_rate=0.2,
                           duplicate_rate=0.3, duplicate_gap_s=0.001)
        for composed in (FaultModel().compose(model),
                         model.compose(FaultModel())):
            assert composed.loss_rate == pytest.approx(model.loss_rate)
            assert composed.jitter_s == pytest.approx(model.jitter_s)
            assert composed.reorder_window == model.reorder_window
            assert composed.reorder_rate == pytest.approx(0.2)
            assert composed.duplicate_rate == pytest.approx(0.3)
            assert composed.duplicate_gap_s == pytest.approx(0.001)

    def test_compose_ignores_inactive_reorder_rate(self):
        both = FaultModel(reorder_window=0.05, reorder_rate=0.2).compose(
            FaultModel(reorder_window=0.01, reorder_rate=0.5))
        assert both.reorder_rate == pytest.approx(1 - 0.8 * 0.5)

    def test_scaled_clamps(self):
        model = FaultModel(loss_rate=0.4, duplicate_rate=0.4)
        assert model.scaled(2.0).loss_rate == pytest.approx(0.8)
        assert model.scaled(10.0).loss_rate == 1.0

    def test_active_model_requires_rng(self):
        registry = RngRegistry(1)
        topology = Topology(registry)
        topology.add_link("a", "b", LinkProfile.lan())
        link = topology.link_between("a", "b")
        with pytest.raises(ValueError):
            link.install_fault(FaultModel(loss_rate=0.5))


def _two_host_world(seed: int, fault: FaultModel):
    registry = RngRegistry(seed)
    simulator = Simulator()
    topology = Topology(registry)
    topology.add_link("a", "b", LinkProfile(latency=0.01))
    if fault is not None:
        topology.set_fault_model("a", "b", fault)
    internet = Internet(simulator, topology, registry)
    sender = internet.add_host(Host("sender", "a", [ip("10.0.0.1")]))
    receiver = internet.add_host(Host("receiver", "b", [ip("10.0.0.2")]))
    received = []
    receiver.bind(7, received.append)
    return simulator, internet, sender, received


def _delivery_trace(seed: int, fault: FaultModel, packets: int = 40):
    """(payload, arrival time) per delivered packet, in delivery order."""
    simulator, internet, sender, received = _two_host_world(seed, fault)
    socket = sender.ephemeral_socket()
    destination = Endpoint(IPAddress("10.0.0.2"), 7)
    for index in range(packets):
        simulator.schedule_at(
            index * 0.001,
            lambda index=index: socket.sendto(destination,
                                              f"p{index}".encode()))
    trace = []
    simulator.run()
    for datagram in received:
        trace.append(datagram.payload.decode())
    return trace, internet


class TestFaultedLinkBehaviour:
    def test_same_seed_same_trace(self):
        fault = FaultModel(loss_rate=0.2, jitter_s=0.005,
                           reorder_window=0.01, duplicate_rate=0.1)
        trace_a, _ = _delivery_trace(seed=7, fault=fault)
        trace_b, _ = _delivery_trace(seed=7, fault=fault)
        assert trace_a == trace_b

    def test_different_seed_different_trace(self):
        fault = FaultModel(loss_rate=0.2, jitter_s=0.005,
                           reorder_window=0.01, duplicate_rate=0.1)
        trace_a, _ = _delivery_trace(seed=7, fault=fault)
        trace_b, _ = _delivery_trace(seed=8, fault=fault)
        assert trace_a != trace_b

    def test_loss_drops_packets(self):
        trace, internet = _delivery_trace(
            seed=3, fault=FaultModel(loss_rate=0.5))
        assert 0 < len(trace) < 40
        link = internet.topology.link_between("a", "b")
        assert link.packets_dropped == 40 - len(trace)

    def test_reordering_inverts_delivery_order(self):
        trace, _ = _delivery_trace(
            seed=5, fault=FaultModel(reorder_window=0.05, reorder_rate=0.5))
        assert len(trace) == 40  # reordering never loses packets
        indices = [int(p[1:]) for p in trace]
        assert indices != sorted(indices)
        assert sorted(indices) == list(range(40))

    def test_duplication_delivers_extra_copies(self):
        trace, internet = _delivery_trace(
            seed=9, fault=FaultModel(duplicate_rate=1.0))
        assert len(trace) == 80
        assert internet.datagrams_duplicated == 40
        link = internet.topology.link_between("a", "b")
        assert link.packets_duplicated == 40

    def test_receipt_marks_duplication(self):
        simulator, internet, sender, received = _two_host_world(
            seed=2, fault=FaultModel(duplicate_rate=1.0))
        receipts = []
        internet.enable_receipt_log()
        internet.add_observer(receipts.append)
        socket = sender.ephemeral_socket()
        socket.sendto(Endpoint(IPAddress("10.0.0.2"), 7), b"x")
        simulator.run()
        assert len(received) == 2          # original + the copy
        assert len(receipts) == 1          # but only one receipt
        assert receipts[0].duplicated
        assert receipts[0].delivered

    def test_downstream_drop_discards_the_duplicate_uncounted(self):
        """A copy sampled at hop 1 dies with the original at a lossy
        hop 2: neither the link nor the internet counts it."""
        registry = RngRegistry(4)
        simulator = Simulator()
        topology = Topology(registry)
        topology.add_link("a", "mid", LinkProfile(latency=0.01))
        topology.add_link("mid", "b", LinkProfile(latency=0.01, loss=1.0))
        topology.set_fault_model("a", "mid", FaultModel(duplicate_rate=1.0))
        internet = Internet(simulator, topology, registry)
        sender = internet.add_host(Host("sender", "a", [ip("10.0.0.1")]))
        receiver = internet.add_host(Host("receiver", "b", [ip("10.0.0.2")]))
        received = []
        receiver.bind(7, received.append)
        socket = sender.ephemeral_socket()
        for _ in range(5):
            socket.sendto(Endpoint(IPAddress("10.0.0.2"), 7), b"x")
        simulator.run()
        assert received == []
        assert topology.link_between("a", "mid").packets_duplicated == 0
        assert internet.datagrams_duplicated == 0

    def test_fault_free_link_is_bit_identical_to_baseline(self):
        """Installing no fault model must not perturb the link's
        intrinsic random stream."""
        trace_baseline, _ = _delivery_trace(seed=11, fault=None)
        trace_inactive, _ = _delivery_trace(seed=11, fault=FaultModel())
        assert trace_baseline == trace_inactive


FAULT_FORGED = ("203.0.113.1", "203.0.113.2")


class TestFaultAxesInCampaigns:
    def _grid(self):
        return ParameterGrid(
            {"loss_rate": (0.0, 0.2)},
            fixed={"num_providers": 3, "corrupted": 1,
                   "forged": FAULT_FORGED, "min_answers": 2},
            name="fault-axis-test")

    def test_serial_equals_parallel_with_fault_axes(self):
        serial = CampaignRunner(pool_attack_trial, trials_per_point=2,
                                base_seed=42, workers=0).run(self._grid())
        parallel = CampaignRunner(pool_attack_trial, trials_per_point=2,
                                  base_seed=42, workers=2).run(self._grid())
        assert serial.records == parallel.records
        assert serial.summaries == parallel.summaries

    def test_loss_axis_reaches_the_scenario(self):
        result = CampaignRunner(pool_attack_trial, trials_per_point=2,
                                base_seed=42, workers=0).run(self._grid())
        clean = result.metric("ok", loss_rate=0.0).mean
        assert clean == 1.0
