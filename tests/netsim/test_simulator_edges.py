"""Edge-case tests for the discrete-event engine.

Covers the corners protocol code actually leans on: cancelling events
from inside running callbacks, pausing with ``run(until=)`` and
resuming, ``step()``/``clear()`` interleavings, and Timer restart
semantics across fire/cancel cycles.
"""

from repro.netsim.simulator import SimulationError, Simulator, Timer


class TestCancelFromCallback:
    def test_cancel_later_event_from_running_callback(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule_at(2.0, lambda: fired.append("victim"))
        sim.schedule_at(1.0, victim.cancel)
        sim.run()
        assert fired == []
        assert sim.now == 1.0  # the cancelled event never advances time

    def test_cancel_same_instant_sibling(self):
        """An event can cancel a sibling scheduled for the same virtual
        instant that has not run yet (tie-break is scheduling order)."""
        sim = Simulator()
        fired = []
        first_handle = {}

        def first():
            fired.append("first")
            first_handle["victim"].cancel()

        event_first = sim.schedule_at(1.0, first)
        first_handle["victim"] = sim.schedule_at(
            1.0, lambda: fired.append("second"))
        assert event_first.sequence < first_handle["victim"].sequence
        sim.run()
        assert fired == ["first"]

    def test_cancel_self_while_running_is_harmless(self):
        sim = Simulator()
        fired = []
        handle = {}

        def callback():
            fired.append(1)
            handle["event"].cancel()  # already popped; must be a no-op

        handle["event"] = sim.schedule_at(1.0, callback)
        sim.run()
        assert fired == [1]
        assert sim.executed_events == 1

    def test_cancelled_then_rescheduled_callback_runs_once(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("old"))

        def replace():
            event.cancel()
            sim.schedule_after(0.5, lambda: fired.append("new"))

        sim.schedule_at(0.5, replace)
        sim.run()
        assert fired == ["new"]


class TestRunUntilResume:
    def test_resume_after_until_fires_remainder(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1.0))
        sim.schedule_at(4.0, lambda: fired.append(4.0))
        sim.schedule_at(9.0, lambda: fired.append(9.0))
        sim.run(until=2.0)
        assert fired == [1.0]
        assert sim.now == 2.0
        sim.run(until=5.0)
        assert fired == [1.0, 4.0]
        sim.run()
        assert fired == [1.0, 4.0, 9.0]
        assert sim.now == 9.0

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append("on-boundary"))
        sim.run(until=3.0)
        assert fired == ["on-boundary"]

    def test_scheduling_during_paused_window_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        # now == 5.0; new work between now and the parked event is fine.
        sim.schedule_at(7.0, lambda: fired.append("inserted"))
        sim.run()
        assert fired == ["inserted", "late"]

    def test_step_after_until_resumes_parked_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(8.0, lambda: fired.append(1))
        sim.run(until=2.0)
        assert sim.pending_events == 1
        assert sim.step() is True
        assert fired == [1]
        assert sim.now == 8.0


class TestStepAndClear:
    def test_step_after_clear_is_idle(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.clear()
        assert sim.step() is False
        assert sim.now == 0.0
        assert sim.executed_events == 0

    def test_clear_then_reschedule_works(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.clear()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_step_skips_cancelled_head(self):
        sim = Simulator()
        fired = []
        head = sim.schedule_at(1.0, lambda: fired.append("head"))
        sim.schedule_at(2.0, lambda: fired.append("tail"))
        head.cancel()
        assert sim.step() is True
        assert fired == ["tail"]
        assert sim.now == 2.0

    def test_clear_from_inside_callback_stops_run(self):
        sim = Simulator()
        fired = []

        def clear_all():
            fired.append("clearer")
            sim.clear()

        sim.schedule_at(1.0, clear_all)
        sim.schedule_at(2.0, lambda: fired.append("never"))
        sim.run()
        assert fired == ["clearer"]


class TestTimerRestart:
    def test_restart_after_fire(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        assert fired == [1.0]
        timer.start(2.0)
        sim.run()
        assert fired == [1.0, 3.0]

    def test_restart_from_own_callback_rearms(self):
        sim = Simulator()
        fired = []

        def periodic():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = Timer(sim, periodic)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert not timer.armed

    def test_rapid_restarts_fire_once_at_last_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        for delay in (5.0, 4.0, 9.0):
            timer.start(delay)
        sim.run()
        assert fired == [9.0]

    def test_cancel_then_restart(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.cancel()
        assert not timer.armed
        timer.start(4.0)
        sim.run()
        assert fired == [4.0]

    def test_restart_while_paused_at_until(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.run(until=3.0)
        timer.start(1.0)     # re-arm relative to the paused clock
        sim.run()
        assert fired == [4.0]


class TestSchedulingInvariants:
    def test_schedule_at_paused_now_allowed(self):
        sim = Simulator()
        sim.run(until=5.0)
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_past_scheduling_rejected_after_resume(self):
        sim = Simulator()
        sim.run(until=5.0)
        try:
            sim.schedule_at(4.0, lambda: None)
        except SimulationError:
            pass
        else:  # pragma: no cover - regression guard
            raise AssertionError("past scheduling must be rejected")
