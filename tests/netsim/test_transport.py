"""Unit tests for the unified request/response transport."""

import pytest

from repro.netsim.address import Endpoint, IPAddress, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.netsim.transport import RetryPolicy, Transport
from repro.util.rng import RngRegistry


class TestRetryPolicy:
    def test_defaults_single_attempt_fixed_timeout(self):
        policy = RetryPolicy(timeout=2.0)
        assert policy.max_attempts == 1
        assert policy.timeout_for(1) == 2.0
        assert policy.total_budget() == 2.0

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(timeout=1.0, retries=3, backoff=2.0)
        assert [policy.timeout_for(a) for a in (1, 2, 3, 4)] == \
            [1.0, 2.0, 4.0, 8.0]
        assert policy.total_budget() == 15.0

    def test_backoff_cap(self):
        policy = RetryPolicy(timeout=1.0, retries=3, backoff=2.0,
                             max_timeout=3.0)
        assert [policy.timeout_for(a) for a in (1, 2, 3, 4)] == \
            [1.0, 2.0, 3.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=1.0, retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=1.0, backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=1.0, max_timeout=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=1.0).timeout_for(2)


class _World:
    """Two hosts on one link; the server side is scripted per test."""

    def __init__(self, seed: int = 1, latency: float = 0.01):
        self.registry = RngRegistry(seed)
        self.simulator = Simulator()
        topology = Topology(self.registry)
        topology.add_link("a", "b", LinkProfile(latency=latency))
        self.internet = Internet(self.simulator, topology, self.registry)
        self.client = self.internet.add_host(
            Host("client", "a", [ip("10.0.0.1")],
                 rng=self.registry.stream("client-ports")))
        self.server = self.internet.add_host(
            Host("server", "b", [ip("10.0.0.2")]))
        self.server_endpoint = Endpoint(IPAddress("10.0.0.2"), 7)
        self.transport = Transport(self.client, self.simulator,
                                   rng=self.registry.stream("txid"))

    def serve(self, responder):
        """Bind the server port; ``responder(socket, datagram)``."""
        socket = self.server.bind(7)
        socket.on_datagram(lambda datagram: responder(socket, datagram))
        return socket


def run_exchange(world, policy, responder=None, **kwargs):
    if responder is not None:
        world.serve(responder)
    reports = []
    world.transport.exchange(
        world.server_endpoint,
        build_request=kwargs.pop("build_request",
                                 lambda attempt: b"ping"),
        classify=kwargs.pop("classify",
                            lambda datagram, attempt: datagram.payload),
        on_complete=reports.append, policy=policy, **kwargs)
    world.simulator.run()
    assert len(reports) == 1, "completion must fire exactly once"
    return reports[0]


class TestDatagramExchange:
    def test_simple_roundtrip(self):
        world = _World()
        report = run_exchange(
            world, RetryPolicy(timeout=1.0),
            responder=lambda socket, datagram: socket.reply(datagram, b"pong"))
        assert report.value == b"pong"
        assert not report.timed_out
        assert report.attempts == 1
        assert report.bytes_sent == 4
        assert report.bytes_received == 4
        assert report.rtt == pytest.approx(0.02)

    def test_timeout_exhausts_attempts(self):
        world = _World()
        report = run_exchange(world, RetryPolicy(timeout=0.5, retries=2))
        assert report.timed_out
        assert report.value is None
        assert report.attempts == 3
        assert world.simulator.now == pytest.approx(1.5)
        assert world.transport.exchanges_timed_out == 1

    def test_backoff_timing(self):
        world = _World()
        run_exchange(world, RetryPolicy(timeout=0.5, retries=2, backoff=2.0))
        # 0.5 + 1.0 + 2.0 worst case.
        assert world.simulator.now == pytest.approx(3.5)

    def test_retry_succeeds_after_drops(self):
        world = _World()
        state = {"seen": 0}

        def flaky(socket, datagram):
            state["seen"] += 1
            if state["seen"] >= 3:
                socket.reply(datagram, b"pong")

        report = run_exchange(world, RetryPolicy(timeout=0.2, retries=5),
                              responder=flaky)
        assert not report.timed_out
        assert report.attempts == 3
        assert state["seen"] == 3

    def test_rejected_replies_keep_exchange_pending(self):
        world = _World()

        def responder(socket, datagram):
            socket.reply(datagram, b"garbage")
            socket.reply(datagram, b"pong")

        def classify(datagram, attempt):
            return datagram.payload if datagram.payload == b"pong" else None

        report = run_exchange(world, RetryPolicy(timeout=1.0),
                              responder=responder, classify=classify)
        assert report.value == b"pong"
        assert report.rejected_replies == 1

    def test_duplicate_replies_are_suppressed(self):
        world = _World()
        outcomes = []

        def responder(socket, datagram):
            socket.reply(datagram, b"pong")
            socket.reply(datagram, b"pong")

        world.serve(responder)
        world.transport.exchange(
            world.server_endpoint,
            build_request=lambda attempt: b"ping",
            classify=lambda datagram, attempt: datagram.payload,
            on_complete=outcomes.append, policy=RetryPolicy(timeout=1.0))
        world.simulator.run()
        assert len(outcomes) == 1  # the duplicate never reaches the owner

    def test_txids_drawn_per_attempt(self):
        world = _World()
        seen = []

        def build_request(attempt):
            seen.append((attempt.index, attempt.txid))
            return b"ping"

        run_exchange(world, RetryPolicy(timeout=0.2, retries=2),
                     build_request=build_request)
        assert [index for index, _ in seen] == [1, 2, 3]
        assert all(txid is not None for _, txid in seen)
        # Deterministic: same seed, same txid sequence.
        world2 = _World()
        seen2 = []
        run_exchange(world2, RetryPolicy(timeout=0.2, retries=2),
                     build_request=lambda a: (seen2.append((a.index, a.txid))
                                              or b"ping"))
        assert seen == seen2

    def test_cancel_releases_the_socket(self):
        world = _World()
        outcomes = []
        exchange = world.transport.exchange(
            world.server_endpoint,
            build_request=lambda attempt: b"ping",
            classify=lambda datagram, attempt: datagram.payload,
            on_complete=outcomes.append, policy=RetryPolicy(timeout=1.0))
        assert len(world.client.open_sockets) == 1
        exchange.pending.cancel()
        assert world.client.open_sockets == []   # port released immediately
        world.simulator.run()
        assert outcomes == []                    # and no completion fires

    def test_fresh_socket_per_attempt_ignores_stale_port(self):
        """A reply addressed to a previous attempt's port is dropped by
        the host (the socket is gone), so it cannot complete the
        exchange."""
        world = _World()
        stale = []

        def responder(socket, datagram):
            stale.append(datagram)
            if len(stale) == 2:
                # Answer the FIRST attempt's (closed) source port.
                socket.sendto(stale[0].src, b"late")

        report = run_exchange(world, RetryPolicy(timeout=0.2, retries=3),
                              responder=responder)
        assert report.timed_out
        assert report.attempts == 4


class TestSupervise:
    def test_resolve_ends_supervision(self):
        world = _World()
        attempts = []
        reports = []

        def begin(attempt):
            attempts.append(attempt.index)
            world.simulator.schedule_after(
                0.05, lambda: pending.resolve("done"))

        pending = world.transport.supervise(
            begin_attempt=begin, on_complete=reports.append,
            policy=RetryPolicy(timeout=1.0, retries=2))
        world.simulator.run()
        assert attempts == [1]
        assert reports[0].value == "done"
        assert reports[0].rtt == pytest.approx(0.05)

    def test_timeout_retries_then_exhausts(self):
        world = _World()
        attempts = []
        reports = []
        world.transport.supervise(
            begin_attempt=lambda attempt: attempts.append(attempt.index),
            on_complete=reports.append,
            policy=RetryPolicy(timeout=0.5, retries=2))
        world.simulator.run()
        assert attempts == [1, 2, 3]
        assert reports[0].timed_out

    def test_late_resolve_is_suppressed(self):
        world = _World()
        reports = []
        pending = world.transport.supervise(
            begin_attempt=lambda attempt: None,
            on_complete=reports.append, policy=RetryPolicy(timeout=0.1))
        world.simulator.run()
        assert reports[0].timed_out
        pending.resolve("too late")
        assert len(reports) == 1
        assert reports[0].value is None
        assert reports[0].suppressed_replies == 1
