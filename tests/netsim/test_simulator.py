"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.simulator import Event, SimulationError, Simulator, Timer


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append("c"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("first"))
        sim.schedule_at(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_now_advances_to_last_event(self):
        sim = Simulator()
        sim.schedule_at(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_schedule_after_is_relative(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_after(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda: None)

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator(start_time=3.0)
        seen = []
        sim.call_soon(lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule_after(1.0, lambda: order.append("inner"))

        sim.schedule_at(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        event = sim.schedule_at(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_fire_leaves_pending_count_intact(self):
        # The O(1) pending counter must ignore cancels on handles that
        # already fired: holding one across run(until=...) is legal.
        sim = Simulator()
        fired = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(10.0, lambda: None)
        sim.run(until=5.0)
        fired.cancel()
        fired.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_clear_leaves_pending_count_intact(self):
        sim = Simulator()
        stale = sim.schedule_at(1.0, lambda: None)
        sim.clear()
        stale.cancel()
        assert sim.pending_events == 0
        sim.schedule_at(2.0, lambda: None)
        assert sim.pending_events == 1


class TestRunBounds:
    def test_run_until_pauses(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_until_with_empty_queue_advances_time(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bound(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule_at(float(i), lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_step_returns_false_when_idle(self):
        sim = Simulator()
        assert sim.step() is False

    def test_step_executes_one(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["a"]

    def test_clear_drops_pending(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.clear()
        assert sim.pending_events == 0

    def test_executed_events_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.executed_events == 4

    def test_run_not_reentrant(self):
        sim = Simulator()
        failure = []

        def reenter():
            try:
                sim.run()
            except SimulationError:
                failure.append(True)

        sim.schedule_at(1.0, reenter)
        sim.run()
        assert failure == [True]


class TestTimer:
    def test_fires_after_delay(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_restart_resets_deadline(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.schedule_at(1.0, lambda: timer.start(5.0))
        sim.run()
        assert fired == [6.0]

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(2.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_armed_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert not timer.armed
        timer.start(1.0)
        assert timer.armed
        sim.run()
        assert not timer.armed


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0, max_value=1000,
                              allow_nan=False), min_size=1, max_size=50))
    def test_events_always_execute_in_nondecreasing_time(self, times):
        sim = Simulator()
        observed = []
        for t in times:
            sim.schedule_at(t, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)
