"""Integration tests for hosts, sockets and the delivery fabric."""

import pytest

from repro.netsim.address import Endpoint, ip
from repro.netsim.host import Host, PortInUseError
from repro.netsim.internet import Internet, TapAction, TapVerdict
from repro.netsim.link import LinkProfile
from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator
from repro.netsim.socket import SocketClosedError
from repro.netsim.topology import Topology
from repro.util.rng import RngRegistry


def build_pair(loss: float = 0.0, latency: float = 0.01):
    """Two hosts on a two-node topology; returns (internet, alpha, beta)."""
    sim = Simulator()
    registry = RngRegistry(42)
    topo = Topology(registry)
    topo.add_link("left", "right", LinkProfile(latency=latency, loss=loss))
    net = Internet(sim, topo, registry)
    alpha = net.add_host(Host("alpha", "left", [ip("10.0.0.1")]))
    beta = net.add_host(Host("beta", "right", [ip("10.0.0.2")]))
    return net, alpha, beta


class TestHostRegistration:
    def test_duplicate_name_rejected(self):
        net, _, _ = build_pair()
        with pytest.raises(ValueError, match="duplicate host name"):
            net.add_host(Host("alpha", "left", [ip("10.0.0.9")]))

    def test_duplicate_address_rejected(self):
        net, _, _ = build_pair()
        with pytest.raises(ValueError, match="already owned"):
            net.add_host(Host("gamma", "left", [ip("10.0.0.1")]))

    def test_unknown_node_rejected(self):
        net, _, _ = build_pair()
        with pytest.raises(ValueError, match="unknown node"):
            net.add_host(Host("gamma", "mars", [ip("10.0.0.9")]))

    def test_host_lookup(self):
        net, alpha, _ = build_pair()
        assert net.host("alpha") is alpha
        assert net.host_for_address(ip("10.0.0.1")) is alpha
        assert net.host_for_address(ip("10.9.9.9")) is None

    def test_host_needs_address(self):
        with pytest.raises(ValueError):
            Host("empty", "left", [])

    def test_address_for_family(self):
        host = Host("dual", "left", [ip("10.0.0.5"), ip("fd00::5")])
        assert host.address_for_family(4) == ip("10.0.0.5")
        assert host.address_for_family(6) == ip("fd00::5")
        with pytest.raises(LookupError):
            Host("v4only", "left", [ip("10.0.0.6")]).address_for_family(6)


class TestDelivery:
    def test_basic_delivery(self):
        net, alpha, beta = build_pair()
        received = []
        beta.bind(53, received.append)
        sock = alpha.ephemeral_socket()
        sock.sendto(Endpoint(ip("10.0.0.2"), 53), b"hello")
        net.simulator.run()
        assert len(received) == 1
        assert received[0].payload == b"hello"
        assert received[0].src == sock.endpoint

    def test_latency_applied(self):
        net, alpha, beta = build_pair(latency=0.05)
        times = []
        beta.bind(53, lambda d: times.append(net.simulator.now))
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert times[0] >= 0.05

    def test_reply_goes_back(self):
        net, alpha, beta = build_pair()
        responses = []

        server_sock = beta.bind(53)
        server_sock.on_datagram(lambda d: server_sock.reply(d, b"pong"))
        client = alpha.ephemeral_socket(lambda d: responses.append(d.payload))
        client.sendto(Endpoint(ip("10.0.0.2"), 53), b"ping")
        net.simulator.run()
        assert responses == [b"pong"]

    def test_unbound_port_drops(self):
        net, alpha, _ = build_pair()
        net.enable_receipt_log()
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 999), b"x")
        net.simulator.run()
        receipt = net.receipts[-1]
        assert not receipt.delivered
        assert receipt.dropped_by == "no-socket"

    def test_unknown_address_drops(self):
        net, alpha, _ = build_pair()
        net.enable_receipt_log()
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.9.9.9"), 53), b"x")
        net.simulator.run()
        assert net.receipts[-1].dropped_by == "no-host"

    def test_full_loss_link_drops(self):
        net, alpha, beta = build_pair(loss=1.0)
        net.enable_receipt_log()
        received = []
        beta.bind(53, received.append)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert received == []
        assert net.receipts[-1].dropped_by == "left--right"

    def test_same_node_loopback_style_delivery(self):
        sim = Simulator()
        registry = RngRegistry(1)
        topo = Topology(registry)
        topo.add_node("only")
        net = Internet(sim, topo, registry)
        a = net.add_host(Host("a", "only", [ip("10.0.0.1")]))
        b = net.add_host(Host("b", "only", [ip("10.0.0.2")]))
        got = []
        b.bind(53, got.append)
        a.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"hi")
        sim.run()
        assert len(got) == 1

    def test_counters(self):
        net, alpha, beta = build_pair()
        beta.bind(53, lambda d: None)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"12345")
        net.simulator.run()
        assert net.datagrams_sent == 1
        assert net.datagrams_delivered == 1
        assert net.bytes_sent == 5

    def test_receipt_latency_and_route(self):
        net, alpha, beta = build_pair(latency=0.02)
        net.enable_receipt_log()
        beta.bind(53, lambda d: None)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        receipt = net.receipts[-1]
        assert receipt.delivered
        assert receipt.latency >= 0.02
        assert receipt.route_nodes == ["left", "right"]
        assert receipt.hops == 1


class TestSockets:
    def test_bind_conflict(self):
        _, alpha, _ = build_pair()
        alpha.bind(53)
        with pytest.raises(PortInUseError):
            alpha.bind(53)

    def test_bind_foreign_address_rejected(self):
        _, alpha, _ = build_pair()
        with pytest.raises(ValueError):
            alpha.bind(53, address=ip("10.0.0.2"))

    def test_closed_socket_cannot_send(self):
        _, alpha, _ = build_pair()
        sock = alpha.ephemeral_socket()
        sock.close()
        with pytest.raises(SocketClosedError):
            sock.sendto(Endpoint(ip("10.0.0.2"), 53), b"x")

    def test_close_releases_port(self):
        _, alpha, _ = build_pair()
        sock = alpha.bind(53)
        sock.close()
        alpha.bind(53)  # must not raise

    def test_closed_socket_drops_inbound(self):
        net, alpha, beta = build_pair()
        received = []
        server = beta.bind(53, received.append)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        server.close()
        net.simulator.run()
        assert received == []

    def test_ephemeral_ports_unique(self):
        _, alpha, _ = build_pair()
        ports = {alpha.ephemeral_socket().endpoint.port for _ in range(50)}
        assert len(ports) == 50

    def test_sequential_ports_predictable(self):
        host = Host("seq", "left", [ip("10.1.0.1")], randomize_ports=False)
        first = host.ephemeral_socket().endpoint.port
        second = host.ephemeral_socket().endpoint.port
        assert second == first + 1

    def test_socket_counters(self):
        net, alpha, beta = build_pair()
        server = beta.bind(53, lambda d: None)
        client = alpha.ephemeral_socket()
        client.sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert client.datagrams_sent == 1
        assert server.datagrams_received == 1


class TestTaps:
    def test_observing_tap_sees_packets(self):
        net, alpha, beta = build_pair()
        seen = []

        def tap(link, datagram):
            seen.append(datagram.payload)
            return TapAction.passthrough()

        net.add_tap("left--right", tap)
        beta.bind(53, lambda d: None)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"secret")
        net.simulator.run()
        assert seen == [b"secret"]

    def test_dropping_tap(self):
        net, alpha, beta = build_pair()
        net.enable_receipt_log()
        received = []
        net.add_tap("left--right", lambda link, d: TapAction.drop())
        beta.bind(53, received.append)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert received == []
        assert net.receipts[-1].dropped_by == "tap:left--right"

    def test_rewriting_tap(self):
        net, alpha, beta = build_pair()
        received = []
        net.add_tap("left--right",
                    lambda link, d: TapAction.rewrite(b"tampered"))
        beta.bind(53, received.append)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert received[0].payload == b"tampered"

    def test_tap_extra_delay_on_rewrite(self):
        net, alpha, beta = build_pair(latency=0.01)
        times = []
        net.add_tap("left--right",
                    lambda link, d: TapAction.rewrite(d.payload, extra_delay=0.5))
        beta.bind(53, lambda d: times.append(net.simulator.now))
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert times[0] >= 0.51

    def test_remove_tap(self):
        net, alpha, beta = build_pair()
        received = []
        tap = lambda link, d: TapAction.drop()
        net.add_tap("left--right", tap)
        net.remove_tap("left--right", tap)
        beta.bind(53, received.append)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert len(received) == 1

    def test_first_non_pass_verdict_wins(self):
        net, alpha, beta = build_pair()
        received = []
        net.add_tap("left--right", lambda link, d: TapAction.drop())
        net.add_tap("left--right",
                    lambda link, d: TapAction.rewrite(b"never"))
        beta.bind(53, received.append)
        alpha.ephemeral_socket().sendto(Endpoint(ip("10.0.0.2"), 53), b"x")
        net.simulator.run()
        assert received == []


class TestInjection:
    def test_offpath_injection_with_spoofed_source(self):
        net, alpha, beta = build_pair()
        received = []
        beta.bind(53, received.append)
        # Attacker injects from "left" claiming to be 10.0.0.1.
        forged = Datagram(src=Endpoint(ip("10.0.0.1"), 12345),
                          dst=Endpoint(ip("10.0.0.2"), 53),
                          payload=b"forged")
        net.inject(forged, at_node="left")
        net.simulator.run()
        assert len(received) == 1
        assert received[0].spoofed is True
        assert received[0].src.address == ip("10.0.0.1")

    def test_injected_packets_cross_taps(self):
        net, alpha, beta = build_pair()
        received = []
        net.add_tap("left--right", lambda link, d: TapAction.drop())
        beta.bind(53, received.append)
        forged = Datagram(src=Endpoint(ip("10.0.0.1"), 1),
                          dst=Endpoint(ip("10.0.0.2"), 53), payload=b"x")
        net.inject(forged, at_node="left")
        net.simulator.run()
        assert received == []
