"""Tests for addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.address import AddressAllocator, Endpoint, IPAddress, ip


class TestIPAddress:
    def test_ipv4_family(self):
        assert ip("192.0.2.1").family == 4

    def test_ipv6_family(self):
        assert ip("2001:db8::1").family == 6

    def test_equality(self):
        assert ip("192.0.2.1") == ip("192.0.2.1")
        assert ip("192.0.2.1") != ip("192.0.2.2")

    def test_equality_with_string(self):
        assert ip("192.0.2.1") == "192.0.2.1"

    def test_hashable(self):
        assert len({ip("192.0.2.1"), ip("192.0.2.1"), ip("192.0.2.2")}) == 2

    def test_copy_constructor(self):
        original = ip("10.0.0.1")
        assert IPAddress(original) == original

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            ip("not-an-address")

    def test_packed_roundtrip_v4(self):
        address = ip("198.51.100.7")
        assert IPAddress.from_packed(address.packed) == address
        assert len(address.packed) == 4

    def test_packed_roundtrip_v6(self):
        address = ip("2001:db8::42")
        assert IPAddress.from_packed(address.packed) == address
        assert len(address.packed) == 16

    def test_from_packed_bad_length(self):
        with pytest.raises(ValueError):
            IPAddress.from_packed(b"\x01\x02\x03")

    def test_ordering_within_family(self):
        assert ip("10.0.0.1") < ip("10.0.0.2")

    def test_ordering_across_families(self):
        assert ip("255.255.255.255") < ip("::1")

    def test_str(self):
        assert str(ip("192.0.2.1")) == "192.0.2.1"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_v4_packed_roundtrip_property(self, raw):
        packed = raw.to_bytes(4, "big")
        assert IPAddress.from_packed(packed).packed == packed


class TestEndpoint:
    def test_construction(self):
        endpoint = Endpoint(ip("192.0.2.1"), 53)
        assert endpoint.port == 53
        assert endpoint.address == ip("192.0.2.1")

    def test_accepts_string_address(self):
        endpoint = Endpoint("192.0.2.1", 53)
        assert endpoint.address == ip("192.0.2.1")

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            Endpoint(ip("192.0.2.1"), 70000)

    def test_frozen_and_hashable(self):
        a = Endpoint(ip("192.0.2.1"), 53)
        b = Endpoint(ip("192.0.2.1"), 53)
        assert a == b
        assert len({a, b}) == 1

    def test_str_v6_brackets(self):
        assert str(Endpoint(ip("2001:db8::1"), 443)) == "[2001:db8::1]:443"


class TestAddressAllocator:
    def test_unique_ipv4(self):
        alloc = AddressAllocator()
        seen = {alloc.next_ipv4() for _ in range(100)}
        assert len(seen) == 100

    def test_unique_ipv6(self):
        alloc = AddressAllocator()
        seen = {alloc.next_ipv6() for _ in range(100)}
        assert len(seen) == 100

    def test_families(self):
        alloc = AddressAllocator()
        assert alloc.next_for_family(4).family == 4
        assert alloc.next_for_family(6).family == 6

    def test_bad_family(self):
        with pytest.raises(ValueError):
            AddressAllocator().next_for_family(5)
