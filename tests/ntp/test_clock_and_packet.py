"""Unit tests for clocks and NTP packet arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.ntp.clock import SimClock
from repro.ntp.packet import (
    MODE_CLIENT,
    MODE_SERVER,
    NtpFormatError,
    NtpPacket,
    offset_and_delay,
)


class FakeTime:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSimClock:
    def test_zero_offset_tracks_true_time(self):
        time = FakeTime()
        clock = SimClock(time)
        time.now = 5.0
        assert clock.now() == 5.0
        assert clock.error() == 0.0

    def test_offset(self):
        time = FakeTime()
        clock = SimClock(time, offset=0.25)
        time.now = 10.0
        assert clock.now() == pytest.approx(10.25)
        assert clock.error() == pytest.approx(0.25)

    def test_drift_accumulates(self):
        time = FakeTime()
        clock = SimClock(time, drift_ppm=100.0)
        time.now = 10_000.0
        assert clock.error() == pytest.approx(1.0)  # 100ppm over 10^4 s

    def test_step_corrects_error(self):
        time = FakeTime()
        clock = SimClock(time, offset=0.5)
        time.now = 100.0
        clock.step(-clock.error())
        assert clock.error() == pytest.approx(0.0)
        assert clock.steps_applied == 1

    def test_step_folds_drift(self):
        time = FakeTime()
        clock = SimClock(time, drift_ppm=200.0)
        time.now = 5000.0
        clock.step(-clock.error())
        assert clock.error() == pytest.approx(0.0)
        time.now = 10000.0
        # Drift continues from the step point.
        assert clock.error() == pytest.approx(1.0)

    def test_set_drift_preserves_current_reading(self):
        time = FakeTime()
        clock = SimClock(time, drift_ppm=100.0)
        time.now = 1000.0
        error_before = clock.error()
        clock.set_drift_ppm(0.0)
        assert clock.error() == pytest.approx(error_before)
        time.now = 2000.0
        assert clock.error() == pytest.approx(error_before)

    @given(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    def test_step_exact_at_instant(self, adjustment):
        time = FakeTime()
        clock = SimClock(time, offset=0.1, drift_ppm=50.0)
        time.now = 123.0
        before = clock.now()
        clock.step(adjustment)
        assert clock.now() == pytest.approx(before + adjustment)


class TestNtpPacket:
    def test_roundtrip(self):
        packet = NtpPacket(mode=MODE_SERVER, stratum=2, origin=1.5,
                           receive=2.5, transmit=3.5)
        decoded = NtpPacket.decode(packet.encode())
        assert decoded == packet

    def test_reply_sets_mode_and_timestamps(self):
        request = NtpPacket(origin=1.0)
        reply = request.reply(receive=2.0, transmit=2.1)
        assert reply.mode == MODE_SERVER
        assert reply.origin == 1.0
        assert reply.receive == 2.0
        assert reply.transmit == 2.1

    def test_decode_wrong_size(self):
        with pytest.raises(NtpFormatError):
            NtpPacket.decode(b"short")

    def test_default_is_client_mode(self):
        assert NtpPacket().mode == MODE_CLIENT


class TestOffsetAndDelay:
    def test_symmetric_path_exact_offset(self):
        # Client at t=0 sends; server clock is +5s; 10ms each way.
        t1 = 0.0
        t2 = 5.010   # server receives (server time)
        t3 = 5.010   # server sends
        t4 = 0.020   # client receives (client time)
        offset, delay = offset_and_delay(t1, t2, t3, t4)
        assert offset == pytest.approx(5.0)
        assert delay == pytest.approx(0.020)

    def test_zero_offset(self):
        offset, delay = offset_and_delay(0.0, 0.010, 0.010, 0.020)
        assert offset == pytest.approx(0.0)
        assert delay == pytest.approx(0.020)

    def test_asymmetry_bounds_error(self):
        # 5ms out, 15ms back: offset error is (out-back)/2 = -5ms.
        offset, delay = offset_and_delay(0.0, 0.005, 0.005, 0.020)
        assert offset == pytest.approx(-0.005)
        assert delay == pytest.approx(0.020)

    @given(st.floats(min_value=-10, max_value=10, allow_nan=False),
           st.floats(min_value=0.001, max_value=0.2, allow_nan=False))
    def test_recovers_true_offset_on_symmetric_paths(self, true_offset, rtt):
        t1 = 100.0
        t2 = t1 + rtt / 2 + true_offset
        t3 = t2
        t4 = t1 + rtt
        offset, delay = offset_and_delay(t1, t2, t3, t4)
        assert offset == pytest.approx(true_offset, abs=1e-9)
        assert delay == pytest.approx(rtt, abs=1e-9)
