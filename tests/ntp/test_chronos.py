"""Tests for the Chronos watchdog, including its honesty assumption."""

import pytest

from repro.ntp.chronos import ChronosClient, ChronosConfig, ChronosStatus
from tests.ntp.conftest import build_ntp_world

CONFIG = ChronosConfig(sample_size=9, agreement_window=0.060,
                       panic_threshold=0.200, max_retries=2,
                       min_responses=5)


def chronos_sync(world, pool=None, config=CONFIG, stream="chronos"):
    client = ChronosClient(world.ntp_client, pool or world.scenario.directory.benign,
                           config=config,
                           rng=world.scenario.rng.stream(stream))
    outcomes = []
    client.sync(outcomes.append)
    world.scenario.simulator.run()
    assert len(outcomes) == 1
    return client, outcomes[0]


class TestHonestPool:
    def test_sync_updates_clock(self):
        world = build_ntp_world(seed=61, client_offset=0.1)
        _, outcome = chronos_sync(world)
        assert outcome.status is ChronosStatus.UPDATED
        # Clock error corrected from 100ms to a few ms.
        assert abs(world.client_clock.error()) < 0.03

    def test_sync_with_accurate_clock_is_stable(self):
        world = build_ntp_world(seed=62, client_offset=0.0)
        _, outcome = chronos_sync(world)
        assert outcome.ok
        assert abs(world.client_clock.error()) < 0.03

    def test_rounds_counted(self):
        world = build_ntp_world(seed=63)
        _, outcome = chronos_sync(world)
        assert outcome.rounds_used >= 1


class TestMinorityMalicious:
    def test_cropping_defeats_minority(self):
        """≤ d of m sampled servers lying cannot shift the clock."""
        world = build_ntp_world(seed=64, malicious_count=4, malicious_lie=10.0)
        # 4 of 20 malicious; sample 9, crop 3 per side.
        _, outcome = chronos_sync(world)
        assert outcome.ok
        assert abs(world.client_clock.error()) < 0.05

    def test_repeated_syncs_stay_accurate(self):
        world = build_ntp_world(seed=65, malicious_count=4)
        client = ChronosClient(world.ntp_client,
                               world.scenario.directory.benign,
                               config=CONFIG,
                               rng=world.scenario.rng.stream("rep"))
        for _ in range(5):
            outcomes = []
            client.sync(outcomes.append)
            world.scenario.simulator.run()
            assert outcomes[0].ok
        assert abs(world.client_clock.error()) < 0.05


class TestMajorityMalicious:
    def test_poisoned_pool_shifts_clock(self):
        """If the *pool itself* is majority-malicious (what DNS
        poisoning achieves), Chronos cannot save the client — the
        paper's premise."""
        world = build_ntp_world(seed=66, malicious_count=18,
                                malicious_lie=10.0)
        _, outcome = chronos_sync(world)
        # Whether via agreement or panic, the applied offset is the lie.
        assert outcome.offset_applied is not None
        assert world.client_clock.error() > 5.0

    def test_panic_mode_triggers_on_disagreement(self):
        """Half the pool lying forces retries into panic mode."""
        world = build_ntp_world(seed=67, malicious_count=10,
                                malicious_lie=10.0)
        client, outcome = chronos_sync(world)
        assert client.panics >= 1 or outcome.panicked


class TestAvailability:
    def test_failed_when_pool_unresponsive(self):
        world = build_ntp_world(seed=68)
        dead_pool = [f"10.201.0.{i}" for i in range(1, 10)]
        _, outcome = chronos_sync(world, pool=dead_pool)
        assert outcome.status is ChronosStatus.FAILED
        assert world.client_clock.steps_applied == 0

    def test_duplicate_pool_entries_sampled_individually(self):
        world = build_ntp_world(seed=69)
        address = world.scenario.directory.benign[0]
        pool = [address] * 12
        client, outcome = chronos_sync(world, pool=pool)
        assert outcome.ok
        assert world.fleet.server_for(address).requests_served >= 9


class TestConfig:
    def test_default_crop_is_third(self):
        assert ChronosConfig(sample_size=9).effective_crop == 3
        assert ChronosConfig(sample_size=15).effective_crop == 5

    def test_explicit_crop(self):
        assert ChronosConfig(sample_size=9, crop=1).effective_crop == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ChronosConfig(sample_size=0)
        with pytest.raises(ValueError):
            ChronosConfig(agreement_window=-1)
        with pytest.raises(ValueError):
            ChronosConfig(crop=-1)

    def test_empty_pool_rejected(self):
        world = build_ntp_world(seed=70)
        with pytest.raises(ValueError):
            ChronosClient(world.ntp_client, [])

    def test_set_pool_replaces(self):
        world = build_ntp_world(seed=71)
        client = ChronosClient(world.ntp_client, ["10.0.0.1"])
        client.set_pool(["10.0.0.2", "10.0.0.3"])
        assert len(client.pool) == 2
        with pytest.raises(ValueError):
            client.set_pool([])
