"""Fixtures: a pool scenario with a deployed NTP fleet."""

from dataclasses import dataclass

import pytest

from repro.ntp.client import NtpClient
from repro.ntp.clock import SimClock
from repro.ntp.pool import NtpFleet, deploy_ntp_fleet
from repro.scenarios import build_pool_scenario
from repro.scenarios import PoolScenario


@dataclass
class NtpWorld:
    scenario: PoolScenario
    fleet: NtpFleet
    client_clock: SimClock
    ntp_client: NtpClient


def build_ntp_world(seed: int = 50, pool_size: int = 20,
                    client_offset: float = 0.0,
                    malicious_count: int = 0,
                    malicious_lie: float = 10.0,
                    **scenario_kwargs) -> NtpWorld:
    scenario = build_pool_scenario(seed=seed, pool_size=pool_size,
                                   **scenario_kwargs)
    fleet = deploy_ntp_fleet(scenario.internet, scenario.directory,
                             scenario.rng,
                             malicious_lie_offset=malicious_lie)
    for address in scenario.directory.benign[:malicious_count]:
        fleet.corrupt(address, malicious_lie)
    client_clock = SimClock(lambda: scenario.simulator.now,
                            offset=client_offset)
    ntp_client = NtpClient(scenario.client, scenario.simulator, client_clock,
                           timeout=1.0)
    return NtpWorld(scenario=scenario, fleet=fleet,
                    client_clock=client_clock, ntp_client=ntp_client)


@pytest.fixture
def ntp_world() -> NtpWorld:
    return build_ntp_world()
