"""Integration tests: NTP sampling over the simulated network."""

import pytest

from tests.ntp.conftest import build_ntp_world


def sample_sync(world, address):
    samples = []
    world.ntp_client.sample(address, samples.append)
    world.scenario.simulator.run()
    assert len(samples) == 1
    return samples[0]


class TestSampling:
    def test_honest_server_small_offset(self, ntp_world):
        address = ntp_world.scenario.directory.benign[0]
        sample = sample_sync(ntp_world, address)
        assert sample.ok
        # Honest servers have ≤10ms error; path asymmetry adds a few ms.
        assert abs(sample.offset) < 0.05
        assert sample.delay > 0

    def test_client_offset_measured(self):
        world = build_ntp_world(seed=51, client_offset=-0.5)
        address = world.scenario.directory.benign[0]
        sample = sample_sync(world, address)
        # Client is 0.5s slow; measured offset ~ +0.5.
        assert sample.offset == pytest.approx(0.5, abs=0.05)

    def test_malicious_server_lies(self):
        world = build_ntp_world(seed=52, malicious_count=1, malicious_lie=7.0)
        address = world.scenario.directory.benign[0]  # now corrupted
        sample = sample_sync(world, address)
        assert sample.offset == pytest.approx(7.0, abs=0.1)

    def test_unreachable_server_times_out(self, ntp_world):
        sample = sample_sync(ntp_world, "10.200.200.200")
        assert sample.timed_out
        assert not sample.ok
        assert ntp_world.ntp_client.timeouts == 1

    def test_server_counts_requests(self, ntp_world):
        address = ntp_world.scenario.directory.benign[3]
        sample_sync(ntp_world, address)
        assert ntp_world.fleet.server_for(address).requests_served == 1

    def test_fleet_classification(self):
        world = build_ntp_world(seed=53, malicious_count=3)
        assert len(world.fleet.malicious_servers) == 3
        assert len(world.fleet.honest_servers) == 17
