"""Per-link drop TimeSeries published by the Internet fabric.

The series is created lazily per dropping link (labelled by link id),
so fault-free runs leave the registry snapshot untouched — the
bit-identity contract every telemetry publisher honours.
"""

from repro.scenarios.spec import materialize, pool_spec, set_path


def _snapshot_for(loss_rate: float, seed: int = 3):
    spec = set_path(pool_spec(loss_rate=loss_rate),
                    "telemetry.enabled", True)
    world = materialize(spec, seed)
    world.generate_pool_sync()
    return world.telemetry.snapshot()


class TestLinkDropSeries:
    def test_fault_free_run_publishes_no_drop_series(self):
        snapshot = _snapshot_for(0.0)
        assert not [key for key in snapshot.get("timeseries", {})
                    if key.startswith("net.link_drops")]
        # ... and no drop counters either: everything delivered.
        assert "net.drops" not in str(snapshot.get("counter", {}))

    def test_lossy_access_link_publishes_labelled_series(self):
        snapshot = _snapshot_for(0.35)
        series_keys = [key for key in snapshot["timeseries"]
                       if key.startswith("net.link_drops")]
        assert series_keys == [
            "net.link_drops{link=client-edge--eu-central}"]
        entry = snapshot["timeseries"][series_keys[0]]
        # The series carries per-bin [count, sum, min, max] rows whose
        # total count equals the dropped-datagram counter.
        drops = sum(row[0] for row in entry["bins"].values())
        counted = snapshot["counter"]["net.datagrams_dropped"]
        assert drops == counted > 0

    def test_series_is_deterministic_across_runs(self):
        assert _snapshot_for(0.35) == _snapshot_for(0.35)
