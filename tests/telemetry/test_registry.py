"""Registry scoping, snapshot determinism and sharded merging."""

import pytest

from repro.dns.client import StubResolver
from repro.dns.rrtype import RRType
from repro.netsim.address import IPAddress
from repro.telemetry import (
    MetricsRegistry,
    current_registry,
    install_registry,
    use_registry,
)

from tests.dns.conftest import build_dns_world


class TestRegistryBasics:
    def test_instruments_are_memoised(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", x=1) is registry.counter("a", x=1)
        assert registry.counter("a") is not registry.counter("a", x=1)

    def test_kind_conflicts_are_loud(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.histogram("a")
        registry.timeseries("ts")
        with pytest.raises(TypeError):
            registry.counter("ts")

    def test_value_reads_counters(self):
        registry = MetricsRegistry()
        assert registry.value("missing") == 0.0
        registry.counter("hits").inc(3)
        assert registry.value("hits") == 3

    def test_timeseries_bin_width_pins_on_first_use(self):
        registry = MetricsRegistry()
        pinned = registry.timeseries("ntp.offset", 10.0)
        assert registry.timeseries("ntp.offset", 1.0) is pinned
        assert pinned.bin_width == 10.0

    def test_names_render_labels(self):
        registry = MetricsRegistry()
        registry.counter("net.drops", reason="no-route")
        registry.counter("plain")
        assert registry.names() == ["net.drops{reason=no-route}", "plain"]


class TestScoping:
    def test_use_registry_restores_previous(self):
        assert current_registry() is None
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            assert current_registry() is outer
            with use_registry(inner):
                assert current_registry() is inner
            assert current_registry() is outer
        assert current_registry() is None

    def test_install_registry_none_disables(self):
        registry = MetricsRegistry()
        install_registry(registry)
        assert current_registry() is registry
        install_registry(None)
        assert current_registry() is None

    def test_components_skip_telemetry_without_registry(self):
        world = build_dns_world()
        stub = StubResolver(world.client, world.simulator,
                            IPAddress("10.0.1.1"))
        assert stub._telemetry is None

    def test_components_publish_into_scoped_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            world = build_dns_world()
            stub = StubResolver(world.client, world.simulator,
                                IPAddress("10.0.1.1"))
        outcomes = []
        stub.query("pool.ntppool.org", RRType.A, outcomes.append)
        world.simulator.run()
        assert outcomes[0].ok
        assert registry.value("dns.stub.queries") == 1
        assert registry.value("dns.stub.responses") == 1
        assert registry.value("net.datagrams_sent") > 0
        assert registry.value("transport.exchanges", label="stub-query") == 1
        # The resolver's upstream exchanges ride the transport too.
        assert registry.value("transport.exchanges",
                              label="resolver-query") == 3


class TestSnapshots:
    @staticmethod
    def _observe(registry: MetricsRegistry, observations) -> None:
        for kind, name, args in observations:
            if kind == "counter":
                registry.counter(name).inc(args)
            elif kind == "hist":
                registry.histogram(name).observe(args)
            elif kind == "series":
                registry.timeseries(name, 5.0).record(*args)
            elif kind == "gauge":
                registry.gauge(name).set(*args)

    OBSERVATIONS = [
        ("counter", "rounds", 3),
        ("hist", "rtt", 0.5),
        ("series", "victims", (1.0, 1.0)),
        ("gauge", "active", (10.0, 2.0)),
        ("hist", "rtt", 0.25),
        ("counter", "rounds", 2),
        ("series", "victims", (7.0, 0.0)),
        ("hist", "rtt", 2.0),
        ("gauge", "active", (12.0, 5.0)),
        ("series", "victims", (12.0, 1.0)),
    ]

    def test_snapshot_is_deterministic(self):
        snapshots = []
        for _ in range(2):
            registry = MetricsRegistry()
            self._observe(registry, self.OBSERVATIONS)
            snapshots.append(registry.snapshot_json())
        assert snapshots[0] == snapshots[1]

    def test_sharded_merge_is_bit_identical_to_serial(self):
        serial = MetricsRegistry()
        self._observe(serial, self.OBSERVATIONS)

        shards = [MetricsRegistry() for _ in range(2)]
        self._observe(shards[0], self.OBSERVATIONS[:5])
        self._observe(shards[1], self.OBSERVATIONS[5:])
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard)

        assert merged.snapshot_json() == serial.snapshot_json()

    def test_merge_never_aliases_shard_state(self):
        shard = MetricsRegistry()
        shard.counter("x").inc(1)
        merged = MetricsRegistry().merge(shard)
        merged.counter("x").inc(1)
        assert shard.value("x") == 1
        assert merged.value("x") == 2

    def test_merge_rejects_kind_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.histogram("x")
        with pytest.raises(TypeError):
            a.merge(b)

    def test_snapshot_is_strict_json_even_for_untouched_instruments(self):
        import json

        registry = MetricsRegistry()
        registry.gauge("never_set")
        registry.histogram("empty")
        registry.counter("zero")
        registry.timeseries("silent")
        payload = json.loads(registry.snapshot_json())
        assert payload["gauge"]["never_set"] == [None, 0.0]
        assert payload["histogram"]["empty"]["min"] is None
