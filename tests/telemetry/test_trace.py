"""Tests for the deterministic tracing layer (repro.telemetry.trace).

Three contracts, mirrored from the metrics registry's:

* **zero cost off** — with no tracer installed, instrumented code paths
  allocate nothing and produce byte-identical metrics snapshots;
* **deterministic on** — span IDs are counter-derived and timestamps
  virtual, so the same world traces to the same bytes on every run;
* **foldable** — per-shard traces rebase and fold like metrics
  snapshots, and the fold is byte-deterministic.
"""

import json

from repro.scenarios.spec import materialize, population_spec
from repro.telemetry.trace import (
    TRACE_SCHEMA,
    Tracer,
    current_tracer,
    fold_trace_snapshots,
    install_tracer,
    load_snapshot,
    sample_fraction,
    should_sample,
    snapshot_to_chrome,
    snapshot_to_jsonl,
    use_tracer,
)

FORGED = ("203.0.113.1", "203.0.113.2")

POPULATION = dict(num_clients=4, rounds=2, num_providers=3, corrupted=1,
                  behavior="substitute", forged=FORGED, pool_size=8,
                  answers_per_query=4)


def _traced_population(seed=11):
    tracer = Tracer()
    with use_tracer(tracer):
        world = materialize(population_spec(**POPULATION), seed)
        world.run()
    return tracer, world


class TestSpanRecording:
    def test_ids_are_counter_derived_in_emission_order(self):
        tracer = Tracer()
        spans = [tracer.begin(f"s{i}") for i in range(5)]
        assert [s.span_id for s in spans] == [0, 1, 2, 3, 4]

    def test_parent_defaults_to_current_span(self):
        tracer = Tracer()
        root = tracer.begin("root")
        with tracer.scope(root):
            child = tracer.begin("child")
            with tracer.scope(child):
                grandchild = tracer.begin("grandchild")
        orphan = tracer.begin("orphan")
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert orphan.parent_id is None

    def test_scope_restores_previous_on_exit_and_error(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.activate(outer)
        try:
            with tracer.scope(tracer.begin("inner")):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.current is outer

    def test_event_is_zero_length(self):
        tracer = Tracer()
        event = tracer.event("tick", at=3.5)
        assert (event.start, event.end) == (3.5, 3.5)

    def test_span_at_records_precomputed_interval(self):
        tracer = Tracer()
        span = tracer.span_at("flight", 1.0, 2.5)
        assert (span.start, span.end) == (1.0, 2.5)

    def test_open_span_renders_zero_length_at_start(self):
        tracer = Tracer()
        span = tracer.begin("open", start=7.0)
        assert span.to_dict()["end"] == 7.0

    def test_clock_binding(self):
        tracer = Tracer()
        assert tracer.now() == 0.0
        tracer.bind_clock(lambda: 42.0)
        assert tracer.begin("timed").start == 42.0

    def test_attrs_set_merges(self):
        tracer = Tracer()
        span = tracer.begin("s").set(a=1).set(b=2, a=3)
        assert span.to_dict()["attrs"] == {"a": 3, "b": 2}


class TestSnapshotRoundTrip:
    def _tiny(self):
        tracer = Tracer()
        root = tracer.begin("root", start=0.0)
        with tracer.scope(root):
            tracer.event("evt", at=1.0, attrs={"k": "v"})
        tracer.finish(root, 2.0)
        return tracer

    def test_snapshot_carries_schema(self):
        assert self._tiny().snapshot()["schema"] == TRACE_SCHEMA

    def test_snapshot_json_is_deterministic(self):
        assert self._tiny().snapshot_json() == self._tiny().snapshot_json()

    def test_jsonl_round_trips(self):
        tracer = self._tiny()
        recovered = load_snapshot(tracer.to_jsonl())
        assert recovered == tracer.snapshot()

    def test_json_document_round_trips(self):
        tracer = self._tiny()
        assert load_snapshot(tracer.snapshot_json()) == tracer.snapshot()

    def test_empty_text_loads_as_empty_trace(self):
        assert load_snapshot("") == {"schema": TRACE_SCHEMA, "spans": []}

    def test_jsonl_header_then_one_span_per_line(self):
        lines = self._tiny().to_jsonl().strip().splitlines()
        assert json.loads(lines[0]) == {"schema": TRACE_SCHEMA}
        assert [json.loads(line)["id"] for line in lines[1:]] == [0, 1]


class TestFold:
    def _shard(self, names, start=0.0):
        tracer = Tracer()
        root = tracer.begin(names[0], start=start)
        with tracer.scope(root):
            for name in names[1:]:
                tracer.event(name, at=start)
        tracer.finish(root, start + 1.0)
        return tracer.snapshot()

    def test_rebases_ids_and_parents_in_shard_order(self):
        folded = fold_trace_snapshots(
            [self._shard(["a", "a1"]), self._shard(["b", "b1", "b2"])])
        ids = [span["id"] for span in folded["spans"]]
        assert ids == [0, 1, 2, 3, 4]
        by_name = {span["name"]: span for span in folded["spans"]}
        assert by_name["b1"]["parent"] == by_name["b"]["id"] == 2

    def test_tags_shard_only_when_folding_many(self):
        one = fold_trace_snapshots([self._shard(["a"])])
        many = fold_trace_snapshots([self._shard(["a"]), self._shard(["b"])])
        assert "attrs" not in one["spans"][0]
        assert [span["attrs"]["shard"] for span in many["spans"]] == [0, 1]

    def test_accepts_json_strings(self):
        snapshot = self._shard(["a"])
        from_str = fold_trace_snapshots([json.dumps(snapshot)])
        assert from_str["spans"] == fold_trace_snapshots([snapshot])["spans"]

    def test_fold_is_deterministic(self):
        shards = [self._shard(["a", "a1"]), self._shard(["b"])]
        assert (json.dumps(fold_trace_snapshots(shards), sort_keys=True)
                == json.dumps(fold_trace_snapshots(shards), sort_keys=True))


class TestAbsorb:
    def test_reparents_roots_under_current_and_rebases(self):
        shard = Tracer()
        shard_root = shard.begin("shard.root", start=0.0)
        with shard.scope(shard_root):
            shard.event("shard.child", at=0.5)
        shard.finish(shard_root, 1.0)

        parent = Tracer()
        trial = parent.begin("trial", start=0.0)
        with parent.scope(trial):
            parent.absorb(shard.snapshot())
        parent.finish(trial, 2.0)

        by_name = {s.name: s for s in parent.spans}
        assert by_name["shard.root"].parent_id == trial.span_id
        assert by_name["shard.child"].parent_id == by_name["shard.root"].span_id
        # Fresh spans after the graft never collide with absorbed IDs.
        fresh = parent.begin("after")
        assert fresh.span_id > max(s.span_id for s in parent.spans[:-1])

    def test_explicit_none_parent_keeps_roots(self):
        shard = Tracer()
        shard.finish(shard.begin("root", start=0.0), 1.0)
        parent = Tracer()
        with parent.scope(parent.begin("trial")):
            parent.absorb(shard.snapshot(), parent=None)
        assert parent.spans[-1].parent_id is None


class TestSampling:
    def test_fraction_is_stable_and_bounded(self):
        first = sample_fraction("n=3/c=1", 7)
        assert first == sample_fraction("n=3/c=1", 7)
        assert 0.0 <= first < 1.0

    def test_identity_changes_the_draw(self):
        draws = {sample_fraction("point", trial) for trial in range(32)}
        assert len(draws) == 32

    def test_rate_extremes(self):
        assert should_sample("p", 0, 1.0)
        assert not should_sample("p", 0, 0.0)

    def test_rate_selects_the_low_fractions(self):
        rate = 0.25
        for trial in range(64):
            expected = sample_fraction("p", trial) < rate
            assert should_sample("p", trial, rate) == expected


class TestChromeExport:
    def test_events_map_virtual_seconds_to_microseconds(self):
        tracer = Tracer()
        tracer.finish(tracer.begin("root", start=0.001), 0.003)
        chrome = snapshot_to_chrome(tracer.snapshot())
        (event,) = chrome["traceEvents"]
        assert event["ph"] == "X"
        assert (event["ts"], event["dur"]) == (1000.0, 2000.0)
        assert chrome["displayTimeUnit"] == "ms"

    def test_track_follows_nearest_client_ancestor(self):
        tracer = Tracer()
        round_span = tracer.begin("client.round", start=0.0,
                                  attrs={"client": 3})
        with tracer.scope(round_span):
            tracer.event("dns.encode", at=0.0)
        tracer.finish(round_span, 1.0)
        events = {e["name"]: e for e in
                  snapshot_to_chrome(tracer.snapshot())["traceEvents"]}
        assert events["dns.encode"]["tid"] == events["client.round"]["tid"] == 4

    def test_chrome_json_serializes(self):
        tracer, _ = _traced_population()
        payload = json.loads(tracer.to_chrome_json())
        assert len(payload["traceEvents"]) == len(tracer.spans)


class TestZeroCostContract:
    def test_no_tracer_installed_by_default(self):
        assert current_tracer() is None

    def test_use_tracer_restores_previous(self):
        outer = Tracer()
        install_tracer(outer)
        try:
            with use_tracer(Tracer()) as inner:
                assert current_tracer() is inner
            assert current_tracer() is outer
        finally:
            install_tracer(None)

    def test_tracing_never_perturbs_metrics(self):
        _, traced = _traced_population(seed=11)
        untraced = materialize(population_spec(**POPULATION), 11)
        untraced.run()
        assert (traced.telemetry.snapshot_json()
                == untraced.telemetry.snapshot_json())


class TestTraceDeterminism:
    def test_same_world_traces_to_identical_bytes(self):
        first, _ = _traced_population(seed=11)
        second, _ = _traced_population(seed=11)
        assert first.to_jsonl() == second.to_jsonl()
        assert len(first.spans) > 100

    def test_all_parents_resolve_and_all_spans_close(self):
        tracer, _ = _traced_population(seed=11)
        ids = {span.span_id for span in tracer.spans}
        for span in tracer.spans:
            assert span.parent_id is None or span.parent_id in ids
            assert span.end is not None and span.end >= span.start

    def test_sharded_trace_folds_deterministically(self):
        def run(shards):
            tracer = Tracer()
            with use_tracer(tracer):
                world = materialize(population_spec(
                    shards=shards, **POPULATION), 11)
                world.run()
            return tracer
        serial = run(2).to_jsonl()
        again = run(2).to_jsonl()
        assert serial == again
        shard_tags = {json.loads(line).get("attrs", {}).get("shard")
                      for line in serial.strip().splitlines()[1:]}
        assert {0, 1} <= shard_tags

    def test_jsonl_round_trips_through_the_exporters(self):
        tracer, _ = _traced_population(seed=11)
        assert snapshot_to_jsonl(load_snapshot(tracer.to_jsonl())) == (
            tracer.to_jsonl())
