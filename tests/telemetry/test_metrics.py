"""The telemetry instruments' determinism and merge contracts."""

import math

import pytest

from repro.telemetry import (
    BUCKETS_PER_DECADE,
    Counter,
    Gauge,
    LogBucketHistogram,
    TimeSeries,
    bucket_index,
    bucket_upper_edge,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_last_write_wins_by_virtual_time(self):
        gauge = Gauge()
        gauge.set(1.0, at=5.0)
        gauge.set(2.0, at=3.0)   # earlier: ignored
        assert gauge.value == 1.0
        gauge.set(3.0, at=5.0)   # same instant: newest write wins
        assert gauge.value == 3.0

    def test_merge_is_order_independent(self):
        def build(samples):
            gauge = Gauge()
            for at, value in samples:
                gauge.set(value, at=at)
            return gauge

        a1, b1 = build([(1.0, 10.0)]), build([(2.0, 20.0)])
        a2, b2 = build([(1.0, 10.0)]), build([(2.0, 20.0)])
        a1.merge(b1)
        b2.merge(a2)
        assert a1.value == b2.value == 20.0
        assert a1.updated_at == b2.updated_at == 2.0


class TestBucketGeometry:
    def test_fixed_log_spacing(self):
        assert bucket_index(1.0) == 0
        assert bucket_index(10.0) == BUCKETS_PER_DECADE
        assert bucket_index(0.1) == -BUCKETS_PER_DECADE

    def test_edges_bracket_values(self):
        for value in (0.0004, 0.003, 0.07, 1.5, 42.0):
            index = bucket_index(value)
            assert value < bucket_upper_edge(index)
            assert value >= bucket_upper_edge(index - 1) * (1 - 1e-12)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bucket_index(0.0)


# Dyadic rationals: every partial float sum is exact, so histogram
# totals are bit-identical regardless of merge association.
DYADIC = [0.5, 0.25, 2.0, 0.125, 8.0, 0.5, 1.0, 0.0625, 4.0, 0.75]


class TestLogBucketHistogram:
    def test_streaming_stats(self):
        histogram = LogBucketHistogram()
        for value in (0.001, 0.01, 0.01, 0.1):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.minimum == 0.001
        assert histogram.maximum == 0.1
        assert sum(histogram.buckets.values()) == 4

    def test_underflow_bucket_takes_zero_and_negative(self):
        histogram = LogBucketHistogram()
        histogram.observe(0.0)
        histogram.observe(-0.5)
        histogram.observe(1.0)
        assert histogram.underflow == 2
        assert histogram.count == 3

    def test_quantiles_walk_buckets(self):
        histogram = LogBucketHistogram()
        for _ in range(90):
            histogram.observe(0.01)
        for _ in range(10):
            histogram.observe(100.0)
        assert histogram.quantile(0.5) <= 0.02
        assert histogram.quantile(0.99) >= 100.0 * 0.9
        assert histogram.quantile(1.0) == histogram.maximum
        assert LogBucketHistogram().quantile(0.5) == 0.0

    def test_merge_matches_serial_accumulation(self):
        serial = LogBucketHistogram()
        for value in DYADIC:
            serial.observe(value)
        left, right = LogBucketHistogram(), LogBucketHistogram()
        for value in DYADIC[:4]:
            left.observe(value)
        for value in DYADIC[4:]:
            right.observe(value)
        left.merge(right)
        assert left.state() == serial.state()

    def test_merge_associativity(self):
        def shard(values):
            histogram = LogBucketHistogram()
            for value in values:
                histogram.observe(value)
            return histogram

        chunks = [DYADIC[0:3], DYADIC[3:6], DYADIC[6:]]
        left_first = shard(chunks[0])
        left_first.merge(shard(chunks[1]))
        left_first.merge(shard(chunks[2]))

        right_first = shard(chunks[0])
        tail = shard(chunks[1])
        tail.merge(shard(chunks[2]))
        right_first.merge(tail)

        assert left_first.state() == right_first.state()

    def test_bucket_counts_merge_exactly_for_any_values(self):
        # Even with non-dyadic values, the integer parts of the state
        # (counts, buckets, underflow) merge exactly.
        values = [math.pi * k / 7 for k in range(1, 30)]
        serial = LogBucketHistogram()
        for value in values:
            serial.observe(value)
        a, b = LogBucketHistogram(), LogBucketHistogram()
        for value in values[::2]:
            a.observe(value)
        for value in values[1::2]:
            b.observe(value)
        a.merge(b)
        assert a.buckets == serial.buckets
        assert a.count == serial.count
        assert a.underflow == serial.underflow


class TestTimeSeries:
    def test_bins_by_virtual_time(self):
        series = TimeSeries(bin_width=10.0)
        series.record(1.0, 1.0)
        series.record(9.0, 0.0)
        series.record(15.0, 1.0)
        assert series.series() == [(0.0, 0.5), (10.0, 1.0)]
        assert series.count == 3

    def test_pooled_mean(self):
        series = TimeSeries(bin_width=1.0)
        for when, value in [(0.5, 1.0), (1.5, 0.0), (2.5, 1.0), (2.6, 0.0)]:
            series.record(when, value)
        assert series.mean() == 0.5

    def test_merge_requires_same_binning(self):
        with pytest.raises(ValueError):
            TimeSeries(1.0).merge(TimeSeries(2.0))

    def test_merge_matches_serial(self):
        samples = [(t * 3.7 % 50, v) for t, v in
                   zip(range(20), [0.5, 0.25, 1.0, 0.125] * 5)]
        serial = TimeSeries(5.0)
        for when, value in samples:
            serial.record(when, value)
        a, b = TimeSeries(5.0), TimeSeries(5.0)
        for when, value in samples[:10]:
            a.record(when, value)
        for when, value in samples[10:]:
            b.record(when, value)
        a.merge(b)
        assert a.state() == serial.state()

    def test_rejects_bad_bin_width(self):
        with pytest.raises(ValueError):
            TimeSeries(0.0)
