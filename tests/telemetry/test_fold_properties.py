"""Property tests for the snapshot fold entry point.

The sharded megafleet's correctness leans on three registry facts:

* the snapshot JSON round trip is *exact* (a shard can ship its
  registry across a process boundary as bytes);
* left-folding snapshots in shard order is deterministic, whatever the
  observations were;
* over integer-valued observations — which is all the population-layer
  instruments accumulate — the fold is associative byte-for-byte, so
  any grouping of shards (including "one shard", the serial run) folds
  to the same snapshot.

Float totals (histogram ``total``, time-series sums of non-integer
values) are exact only at a *pinned* fold order, which is why the fold
API takes an ordered iterable and the sharding layer always folds in
shard-index order; the associativity property here is deliberately
restricted to integer-valued observations.
"""

from hypothesis import given, settings, strategies as st

from repro.telemetry.registry import MetricsRegistry, fold_snapshots

_NAMES = ("rounds", "sent", "err")
_LABELS = ({}, {"region": "eu"}, {"region": "ap", "tier": "2"})

_FINITE = st.floats(min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False, width=64)
_INTEGRAL = st.integers(min_value=-999, max_value=999).map(float)


def _ops(values):
    """One instrument operation; names are kind-prefixed so a drawn
    (name, labels) pair can never collide across instrument kinds."""
    name = st.sampled_from(_NAMES)
    labels = st.sampled_from(_LABELS)
    return st.one_of(
        st.tuples(st.just("counter"), name, labels,
                  st.integers(min_value=0, max_value=50)),
        st.tuples(st.just("gauge"), name, labels, values, values),
        st.tuples(st.just("histogram"), name, labels, values),
        st.tuples(st.just("timeseries"), name, labels, values, values),
    )


def _build(ops) -> MetricsRegistry:
    registry = MetricsRegistry()
    for op in ops:
        kind, name, labels = op[0], op[1], dict(op[2])
        if kind == "counter":
            registry.counter(f"c.{name}", **labels).inc(op[3])
        elif kind == "gauge":
            registry.gauge(f"g.{name}", **labels).set(op[4], at=op[3])
        elif kind == "histogram":
            registry.histogram(f"h.{name}", **labels).observe(op[3])
        else:
            registry.timeseries(f"t.{name}", 1.0, **labels).record(
                op[3], op[4])
    return registry


@settings(deadline=None, max_examples=60)
@given(ops=st.lists(_ops(_FINITE), max_size=25))
def test_snapshot_round_trip_is_byte_exact(ops):
    registry = _build(ops)
    encoded = registry.snapshot_json()
    assert MetricsRegistry.from_snapshot(encoded).snapshot_json() == encoded
    # The dict form round-trips identically to the JSON form.
    assert (MetricsRegistry.from_snapshot(registry.snapshot())
            .snapshot_json() == encoded)


@settings(deadline=None, max_examples=60)
@given(ops_lists=st.lists(st.lists(_ops(_FINITE), max_size=15),
                          min_size=1, max_size=4))
def test_fold_in_shard_order_is_deterministic(ops_lists):
    snapshots = [_build(ops).snapshot_json() for ops in ops_lists]
    first = fold_snapshots(snapshots).snapshot_json()
    second = fold_snapshots(snapshots).snapshot_json()
    assert first == second


@settings(deadline=None, max_examples=60)
@given(ops_lists=st.lists(st.lists(_ops(_INTEGRAL), max_size=12),
                          min_size=2, max_size=4))
def test_fold_is_associative_over_integer_observations(ops_lists):
    # Every grouping of an ordered shard sequence folds to the same
    # bytes: pre-folding any prefix (or suffix) and folding the result
    # with the rest equals folding the flat sequence.
    snapshots = [_build(ops).snapshot_json() for ops in ops_lists]
    flat = fold_snapshots(snapshots).snapshot_json()
    for split in range(1, len(snapshots)):
        prefix = fold_snapshots(snapshots[:split]).snapshot_json()
        assert fold_snapshots([prefix] + snapshots[split:]
                              ).snapshot_json() == flat
        suffix = fold_snapshots(snapshots[split:]).snapshot_json()
        assert fold_snapshots(snapshots[:split] + [suffix]
                              ).snapshot_json() == flat


@settings(deadline=None, max_examples=40)
@given(ops_lists=st.lists(st.lists(_ops(_FINITE), max_size=12),
                          min_size=1, max_size=3))
def test_fold_select_keeps_exactly_the_selected_subset(ops_lists):
    snapshots = [_build(ops).snapshot_json() for ops in ops_lists]
    counters_only = fold_snapshots(
        snapshots, select=lambda kind, name, labels: kind == "counter")
    folded = counters_only.snapshot()
    assert set(folded) <= {"schema", "counter"}
    # The selected instruments match an unfiltered fold's counters.
    whole = fold_snapshots(snapshots).snapshot()
    assert folded.get("counter", {}) == whole.get("counter", {})


def test_unknown_kind_is_rejected():
    import pytest
    with pytest.raises(ValueError):
        MetricsRegistry.from_snapshot({"bogus": {"x": 1}})


def test_labelled_keys_round_trip():
    registry = MetricsRegistry()
    registry.counter("hits", region="eu", tier=2).inc(3)
    restored = MetricsRegistry.from_snapshot(registry.snapshot_json())
    assert restored.value("hits", region="eu", tier=2) == 3
