"""Tests for the §III analysis: closed forms, MC agreement, advantage."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.advantage import (
    equivalent_keyspace_bits,
    marginal_bits_per_resolver,
    security_bits,
)
from repro.analysis.model import (
    attack_probability_exact,
    attack_probability_paper,
    required_corrupted_resolvers,
    resolvers_for_target_security,
)
from repro.analysis.montecarlo import (
    simulate_attack_probability,
    simulate_pool_fraction,
)
from repro.analysis.poolquality import (
    pool_fraction_with_truncation,
    pool_fraction_without_truncation,
)
from repro.core.policy import TruncationPolicy


class TestRequiredResolvers:
    def test_paper_example_three_resolvers_majority(self):
        """§III-b: 'Even when only 3 DoH resolvers are used ... a
        malicious majority (x ≥ 2/3) is reduced significantly (p²).'"""
        assert required_corrupted_resolvers(3, 2 / 3) == 2

    def test_half_fraction(self):
        assert required_corrupted_resolvers(4, 0.5) == 2
        assert required_corrupted_resolvers(5, 0.5) == 3

    def test_full_fraction(self):
        assert required_corrupted_resolvers(7, 1.0) == 7

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            required_corrupted_resolvers(0, 0.5)

    @given(st.integers(min_value=1, max_value=100),
           st.floats(min_value=0.01, max_value=1.0))
    def test_never_exceeds_n(self, n, y):
        assert 1 <= required_corrupted_resolvers(n, y) <= n

    @given(st.integers(min_value=1, max_value=100),
           st.floats(min_value=0.01, max_value=0.99))
    def test_corrupting_that_many_reaches_fraction(self, n, y):
        """§III-a soundness: ⌈yN⌉ resolvers do yield fraction ≥ y."""
        m = required_corrupted_resolvers(n, y)
        assert m / n >= y - 1e-9


class TestAttackProbability:
    def test_paper_example_p_squared(self):
        assert attack_probability_paper(3, 2 / 3, 0.1) == pytest.approx(0.01)

    def test_decreases_exponentially_in_n(self):
        probabilities = [attack_probability_paper(n, 0.5, 0.3)
                         for n in (3, 5, 9, 17, 33)]
        for earlier, later in zip(probabilities, probabilities[1:]):
            assert later < earlier

    def test_exact_at_least_paper_term(self):
        """P[≥M of N] is at least the single-set term p^M."""
        for n in (3, 5, 10):
            for p in (0.05, 0.2, 0.5):
                assert (attack_probability_exact(n, 0.5, p)
                        >= attack_probability_paper(n, 0.5, p) - 1e-12)

    def test_exact_equals_paper_when_all_needed(self):
        """x=1: all N must fall; both models give p^N."""
        for n in (2, 4, 6):
            assert attack_probability_exact(n, 1.0, 0.3) == pytest.approx(
                attack_probability_paper(n, 1.0, 0.3))

    def test_edges(self):
        assert attack_probability_paper(5, 0.5, 0.0) == 0.0
        assert attack_probability_paper(5, 0.5, 1.0) == 1.0
        assert attack_probability_exact(5, 0.5, 1.0) == pytest.approx(1.0)

    @given(st.integers(min_value=1, max_value=40),
           st.floats(min_value=0.05, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_probability_range(self, n, x, p):
        for fn in (attack_probability_paper, attack_probability_exact):
            value = fn(n, x, p)
            assert 0.0 <= value <= 1.0


class TestResolversForTarget:
    def test_reaches_target(self):
        n = resolvers_for_target_security(0.5, 0.2, 1e-6)
        assert attack_probability_paper(n, 0.5, 0.2) <= 1e-6
        if n > 1:
            assert attack_probability_paper(n - 1, 0.5, 0.2) > 1e-6

    def test_p_one_hopeless(self):
        with pytest.raises(ValueError):
            resolvers_for_target_security(0.5, 1.0, 0.01)

    def test_p_zero_trivial(self):
        assert resolvers_for_target_security(0.5, 0.0, 0.01) == 1


class TestMonteCarloAgreement:
    @pytest.mark.parametrize("n,x,p", [
        (3, 2 / 3, 0.1),
        (3, 2 / 3, 0.3),
        (5, 0.5, 0.2),
        (9, 0.5, 0.4),
        (15, 1 / 3, 0.25),
    ])
    def test_mc_matches_exact_binomial(self, n, x, p):
        result = simulate_attack_probability(n, x, p, trials=20_000, seed=5)
        expected = attack_probability_exact(n, x, p)
        assert result.within(expected), (
            f"MC {result.estimate:.4f} ± {result.standard_error:.4f} "
            f"vs exact {expected:.4f}")

    def test_mc_zero_probability(self):
        result = simulate_attack_probability(5, 0.5, 0.0, trials=1000)
        assert result.estimate == 0.0

    def test_mc_certain(self):
        result = simulate_attack_probability(5, 0.5, 1.0, trials=1000)
        assert result.estimate == 1.0

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            simulate_attack_probability(3, 0.5, 0.1, trials=0)


class TestPoolQuality:
    def test_truncation_share_is_k_over_n(self):
        assert pool_fraction_with_truncation(3, 1, 4, 20) == pytest.approx(1 / 3)
        assert pool_fraction_with_truncation(5, 2, 4, 100) == pytest.approx(2 / 5)

    def test_truncation_independent_of_inflation(self):
        for inflate in (4, 8, 100):
            assert pool_fraction_with_truncation(3, 1, 4, inflate) == (
                pytest.approx(1 / 3))

    def test_no_truncation_rewards_inflation(self):
        small = pool_fraction_without_truncation(3, 1, 4, 4)
        large = pool_fraction_without_truncation(3, 1, 4, 100)
        assert large > small
        assert large > 0.9

    def test_empty_answer_zero_share(self):
        assert pool_fraction_with_truncation(3, 1, 4, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pool_fraction_with_truncation(0, 0, 4, 4)
        with pytest.raises(ValueError):
            pool_fraction_with_truncation(3, 4, 4, 4)

    def test_mc_pool_fraction_matches_closed_form(self):
        mc = simulate_pool_fraction(3, 1, 4, 20,
                                    TruncationPolicy.SHORTEST, trials=100)
        assert mc.estimate == pytest.approx(1 / 3)
        mc_none = simulate_pool_fraction(3, 1, 4, 20,
                                         TruncationPolicy.NONE, trials=100)
        assert mc_none.estimate == pytest.approx(
            pool_fraction_without_truncation(3, 1, 4, 20))


class TestAdvantage:
    def test_bits_paper_example(self):
        # p=0.5, 3 resolvers, need 2: probability 1/4 => 2 bits.
        assert security_bits(3, 2 / 3, 0.5) == pytest.approx(2.0)

    def test_bits_linear_in_n(self):
        bits = [security_bits(n, 0.5, 0.25) for n in (4, 8, 16, 32)]
        slopes = [(b2 - b1) / (n2 - n1)
                  for (b1, n1), (b2, n2) in zip(
                      zip(bits, (4, 8, 16, 32)),
                      zip(bits[1:], (8, 16, 32)))]
        expected = marginal_bits_per_resolver(0.5, 0.25)
        for slope in slopes:
            assert slope == pytest.approx(expected, rel=0.2)

    def test_marginal_bits(self):
        assert marginal_bits_per_resolver(0.5, 0.5) == pytest.approx(0.5)
        assert marginal_bits_per_resolver(1.0, 0.25) == pytest.approx(2.0)

    def test_zero_probability_infinite_bits(self):
        assert security_bits(3, 0.5, 0.0) == math.inf
        assert marginal_bits_per_resolver(0.5, 0.0) == math.inf

    def test_equivalent_keyspace_alias(self):
        assert equivalent_keyspace_bits(5, 0.5, 0.3) == security_bits(
            5, 0.5, 0.3)
