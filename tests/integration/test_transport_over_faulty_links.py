"""End-to-end: protocol clients riding the transport over faulty links.

The satellite claim verified here: a stub DNS client behind a lossy
client access link recovers through the transport's retry schedule, and
the retry accounting (outcome attempts == stub queries sent) is exact
and deterministic for a fixed seed.
"""

from repro.dns.client import StubResolver
from repro.dns.rrtype import RRType
from repro.scenarios import build_pool_scenario


def _run_stub_query(seed: int, loss_rate: float, retries: int = 8,
                    timeout: float = 2.0):
    scenario = build_pool_scenario(seed=seed, num_providers=1,
                                   loss_rate=loss_rate)
    stub = StubResolver(scenario.client, scenario.simulator,
                        scenario.providers[0].address,
                        timeout=timeout, retries=retries,
                        rng=scenario.rng.stream("stub"))
    outcomes = []
    stub.query(scenario.pool_domain, RRType.A, outcomes.append)
    scenario.simulator.run()
    assert len(outcomes) == 1
    return stub, outcomes[0]


class TestDnsOverLossyLink:
    def test_clean_link_needs_one_attempt(self):
        stub, outcome = _run_stub_query(seed=21, loss_rate=0.0)
        assert outcome.ok
        assert outcome.attempts == 1
        assert stub.stats.queries == 1
        assert stub.stats.timeouts == 0

    def test_lossy_link_retries_until_success(self):
        stub, outcome = _run_stub_query(seed=20, loss_rate=0.6)
        assert outcome.ok
        # The transport retried: more than one query hit the wire, and
        # the outcome's attempt count is exactly the queries sent.
        assert outcome.attempts > 1
        assert stub.stats.queries == outcome.attempts
        assert stub.stats.responses == 1

    def test_retry_counts_are_deterministic(self):
        _, first = _run_stub_query(seed=20, loss_rate=0.6)
        _, again = _run_stub_query(seed=20, loss_rate=0.6)
        assert first.attempts == again.attempts

    def test_total_loss_exhausts_the_budget(self):
        stub, outcome = _run_stub_query(seed=21, loss_rate=1.0, retries=2)
        assert outcome.timed_out
        assert outcome.attempts == 3
        assert stub.stats.queries == 3
        assert stub.stats.timeouts == 1


class TestPoolGenerationOverFaultyAccessLink:
    def test_duplicating_link_does_not_double_deliver_outcomes(self):
        """Link-level duplication must be invisible above the transport:
        one pool generation, one callback, one coherent pool."""
        scenario = build_pool_scenario(seed=5, num_providers=3,
                                       duplicate_rate=1.0)
        pool = scenario.generate_pool_sync()
        assert pool.ok
        assert scenario.internet.datagrams_duplicated > 0

    def test_jitter_and_reordering_keep_generation_correct(self):
        scenario = build_pool_scenario(seed=6, num_providers=3,
                                       jitter_s=0.02, reorder_window=0.04)
        pool = scenario.generate_pool_sync()
        assert pool.ok
        assert len(pool.addresses) == 12
