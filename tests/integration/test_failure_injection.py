"""Failure-injection integration tests across the whole stack.

Loss, partitions, dead servers and SERVFAILs, exercised through the
assembled Figure 1 world — robustness behaviour a downstream user
depends on.
"""

import pytest

from repro.dns.rcode import RCode
from repro.dns.resolver import ResolverConfig
from repro.dns.rrtype import RRType
from repro.doh.client import DoHStatus
from repro.netsim.internet import TapAction
from repro.netsim.link import LinkProfile
from repro.scenarios import build_pool_scenario


class TestDoHTransportRetries:
    def test_retry_recovers_from_single_loss(self):
        """Drop exactly the first ClientHello; the retry must succeed."""
        scenario = build_pool_scenario(seed=150)
        dropped = {"count": 0}

        def drop_first_hello(link, datagram):
            if (datagram.dst.port == 443 and datagram.payload
                    and datagram.payload[0] == 1 and dropped["count"] == 0):
                dropped["count"] += 1
                return TapAction.drop()
            return TapAction.passthrough()

        scenario.internet.add_tap("client-edge--eu-central",
                                  drop_first_hello)
        client = scenario.make_doh_client(timeout=1.0, retries=2)
        provider = scenario.providers[0]
        outcomes = []
        client.query(provider.endpoint, provider.name,
                     scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert dropped["count"] == 1
        assert outcomes[0].ok
        assert outcomes[0].latency > 1.0  # paid one timeout

    def test_zero_retries_fails_on_loss(self):
        scenario = build_pool_scenario(seed=151)
        scenario.internet.add_tap(
            "client-edge--eu-central",
            lambda link, d: (TapAction.drop()
                             if d.dst.port == 443 and d.payload[0] == 1
                             else TapAction.passthrough()))
        client = scenario.make_doh_client(timeout=0.5, retries=0)
        provider = scenario.providers[0]
        outcomes = []
        client.query(provider.endpoint, provider.name,
                     scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].status is DoHStatus.TIMEOUT

    def test_retries_validation(self):
        scenario = build_pool_scenario(seed=152)
        with pytest.raises(ValueError):
            scenario.make_doh_client(retries=-1)


def isolated_provider_scenario(seed):
    """Figure 1 providers but with one in asia-east, a region hosting no
    shared DNS infrastructure — so partitioning it hurts only that
    provider."""
    from repro.doh.providers import CLOUDFLARE, QUAD9, DoHProviderProfile
    lonely = DoHProviderProfile("doh.asia.example", "asia-east", "10.53.0.9")
    return build_pool_scenario(seed=seed, num_providers=3,
                               profiles=[lonely, CLOUDFLARE, QUAD9])


def sever_region(topology, region):
    removed = []
    for other in list(topology.nodes):
        if topology.link_between(region, other) is not None:
            profile = topology.link_between(region, other).profile
            topology.remove_link(region, other)
            removed.append((other, profile))
    return removed


class TestPartitions:
    def test_partitioned_region_fails_only_its_provider(self):
        scenario = isolated_provider_scenario(seed=153)
        sever_region(scenario.internet.topology, "asia-east")
        generator = scenario.make_generator(timeout=5.0, retries=0)
        pool = scenario.generate_pool_sync(generator)
        assert not pool.ok  # strict semantics: all must answer
        assert pool.failed_resolvers == ["doh.asia.example"]
        ok_names = {a.resolver.name for a in pool.answers if a.ok}
        assert ok_names == {"cloudflare-dns.com", "dns.quad9.net"}

    def test_healed_partition_recovers(self):
        scenario = isolated_provider_scenario(seed=154)
        topology = scenario.internet.topology
        removed = sever_region(topology, "asia-east")
        generator = scenario.make_generator(timeout=5.0, retries=0)
        first = scenario.generate_pool_sync(generator)
        assert not first.ok
        for other, profile in removed:
            topology.add_link("asia-east", other, profile)
        second = scenario.generate_pool_sync(generator)
        assert second.ok


class TestUpstreamDnsFailures:
    def test_dead_pool_nameservers_yield_servfail_everywhere(self):
        scenario = build_pool_scenario(
            seed=155,
            resolver_config=ResolverConfig(query_timeout=0.3,
                                           max_retries_per_server=0))
        topology = scenario.internet.topology
        # ntpns-edge hosts all three pool nameservers.
        for other in list(topology.nodes):
            if topology.link_between("ntpns-edge", other) is not None:
                topology.remove_link("ntpns-edge", other)
        client = scenario.make_doh_client(timeout=20.0, retries=0)
        provider = scenario.providers[0]
        outcomes = []
        client.query(provider.endpoint, provider.name,
                     scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].ok  # HTTP-level fine
        assert outcomes[0].message.rcode is RCode.SERVFAIL

    def test_loss_on_provider_recursion_path_retries(self):
        """Loss between a provider and the DNS tree is absorbed by the
        resolver's own retry logic."""
        scenario = build_pool_scenario(
            seed=156,
            resolver_config=ResolverConfig(query_timeout=0.3,
                                           max_retries_per_server=10))
        topology = scenario.internet.topology
        # Degrade the nameserver access link.
        topology.remove_link("ntpns-edge", "us-west")
        topology.add_link("ntpns-edge", "us-west",
                          LinkProfile.lossy(0.25, latency=0.005))
        generator = scenario.make_generator(timeout=20.0, retries=2)
        pool = scenario.generate_pool_sync(generator)
        assert pool.ok
        stats = scenario.providers[0].resolver.stats
        assert stats.timeouts >= 0  # retries may or may not have fired


class TestCacheResilience:
    def test_cached_answers_survive_infrastructure_outage(self):
        """Once resolvers have cached the pool, the DNS tree can die and
        lookups still succeed until TTL expiry."""
        scenario = build_pool_scenario(seed=157, pool_ttl=300)
        first = scenario.generate_pool_sync()
        assert first.ok
        topology = scenario.internet.topology
        for edge in ("ntpns-edge", "dns-root-edge", "dns-org-edge"):
            for other in list(topology.nodes):
                if topology.link_between(edge, other) is not None:
                    topology.remove_link(edge, other)
        second = scenario.generate_pool_sync()
        assert second.ok
        # Served from the providers' caches: identical answers.
        assert [str(a) for a in second.addresses] == [
            str(a) for a in first.addresses]

    def test_cache_expiry_after_outage_fails(self):
        scenario = build_pool_scenario(seed=158, pool_ttl=60)
        scenario.generate_pool_sync()
        topology = scenario.internet.topology
        for edge in ("ntpns-edge", "dns-root-edge", "dns-org-edge"):
            for other in list(topology.nodes):
                if topology.link_between(edge, other) is not None:
                    topology.remove_link(edge, other)
        scenario.simulator.run(until=scenario.simulator.now + 120)
        generator = scenario.make_generator(timeout=1.0, retries=0)
        pool = scenario.generate_pool_sync(generator)
        assert not pool.ok
