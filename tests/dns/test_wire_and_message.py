"""Tests for the wire codec and full messages, including round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.message import (
    Flags,
    Message,
    Question,
    ResourceRecord,
    make_query,
    make_response,
)
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import (
    AAAARdata,
    ARdata,
    CNAMERdata,
    MXRdata,
    NSRdata,
    PTRRdata,
    SOARdata,
    TXTRdata,
)
from repro.dns.rrtype import RRClass, RRType
from repro.dns.wire import WireFormatError, WireReader, WireWriter
from repro.netsim.address import IPAddress


class TestWirePrimitives:
    def test_u16_roundtrip(self):
        writer = WireWriter()
        writer.write_u16(0xBEEF)
        assert WireReader(writer.getvalue()).read_u16() == 0xBEEF

    def test_u32_roundtrip(self):
        writer = WireWriter()
        writer.write_u32(0xDEADBEEF)
        assert WireReader(writer.getvalue()).read_u32() == 0xDEADBEEF

    def test_truncated_read_raises(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x01").read_u16()

    def test_character_string_roundtrip(self):
        writer = WireWriter()
        writer.write_character_string(b"hello")
        assert WireReader(writer.getvalue()).read_character_string() == b"hello"

    def test_character_string_too_long(self):
        with pytest.raises(WireFormatError):
            WireWriter().write_character_string(b"x" * 256)


class TestNameWire:
    def test_simple_roundtrip(self):
        writer = WireWriter()
        writer.write_name(Name("www.example.com"))
        assert WireReader(writer.getvalue()).read_name() == Name("www.example.com")

    def test_root_roundtrip(self):
        writer = WireWriter()
        writer.write_name(Name.root())
        data = writer.getvalue()
        assert data == b"\x00"
        assert WireReader(data).read_name().is_root

    def test_compression_shrinks_output(self):
        compressed = WireWriter(compress=True)
        compressed.write_name(Name("www.example.com"))
        compressed.write_name(Name("mail.example.com"))
        plain = WireWriter(compress=False)
        plain.write_name(Name("www.example.com"))
        plain.write_name(Name("mail.example.com"))
        assert len(compressed.getvalue()) < len(plain.getvalue())

    def test_compressed_names_decode(self):
        writer = WireWriter(compress=True)
        names = [Name("www.example.com"), Name("mail.example.com"),
                 Name("example.com"), Name("www.example.com")]
        for name in names:
            writer.write_name(name)
        reader = WireReader(writer.getvalue())
        decoded = [reader.read_name() for _ in range(len(names))]
        assert decoded == names

    def test_identical_name_becomes_pointer(self):
        writer = WireWriter(compress=True)
        writer.write_name(Name("a.example.com"))
        before = writer.offset
        writer.write_name(Name("a.example.com"))
        assert writer.offset - before == 2  # a single pointer

    def test_pointer_loop_rejected(self):
        # A pointer at offset 0 pointing to itself.
        with pytest.raises(WireFormatError):
            WireReader(b"\xc0\x00").read_name()

    def test_forward_pointer_rejected(self):
        # Pointer to offset 4 from offset 0 (forward).
        with pytest.raises(WireFormatError):
            WireReader(b"\xc0\x04\x00\x00\x01a\x00").read_name()

    def test_label_runs_past_end(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x05ab").read_name()

    @given(st.lists(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=15),
        min_size=0, max_size=6))
    def test_roundtrip_property(self, labels):
        try:
            name = Name(".".join(labels) if labels else ".")
        except ValueError:
            return
        writer = WireWriter()
        writer.write_name(name)
        assert WireReader(writer.getvalue()).read_name() == name


class TestCompressionPointers:
    def test_pointer_targets_earlier_suffix(self):
        """A hand-crafted message: 'mail.example.com' written as one
        label plus a pointer into 'www.example.com'."""
        writer = WireWriter(compress=True)
        writer.write_name(Name("www.example.com"))
        # 'example.com' starts after the 'www' label: offset 4.
        data = writer.getvalue() + b"\x04mail" + b"\xc0\x04"
        reader = WireReader(data)
        assert reader.read_name() == Name("www.example.com")
        assert reader.read_name() == Name("mail.example.com")

    def test_reader_offset_lands_after_pointer(self):
        writer = WireWriter(compress=True)
        writer.write_name(Name("a.example.com"))
        writer.write_name(Name("a.example.com"))
        writer.write_u16(0xBEEF)
        reader = WireReader(writer.getvalue())
        reader.read_name()
        reader.read_name()
        # The cursor must resume *after* the 2-byte pointer, not at the
        # pointer's target.
        assert reader.read_u16() == 0xBEEF

    def test_chained_pointers_resolve(self):
        # offset 0: 'example' 'com' 0 ; then 'www' -> 0 ; then ptr -> ptr.
        base = b"\x07example\x03com\x00"
        www = b"\x03www\xc0\x00"          # at offset 13
        chain = b"\xc0\x0d"               # pointer to the www name
        reader = WireReader(base + www + chain, offset=len(base) + len(www))
        assert reader.read_name() == Name("www.example.com")

    def test_case_insensitive_compression_reuses_offset(self):
        writer = WireWriter(compress=True)
        writer.write_name(Name("WWW.Example.COM"))
        before = writer.offset
        writer.write_name(Name("www.example.com"))
        assert writer.offset - before == 2

    def test_no_compression_beyond_pointer_range(self):
        """Offsets ≥ 0x4000 cannot be pointer targets; the writer must
        fall back to emitting the full name."""
        writer = WireWriter(compress=True)
        writer.write_bytes(b"\x00" * 0x4000)
        writer.write_name(Name("far.example.com"))
        before = writer.offset
        writer.write_name(Name("far.example.com"))
        # Still uncompressed: both copies sit past the addressable range.
        assert writer.offset - before == Name("far.example.com").wire_length

    def test_pointer_into_pointer_range_still_compresses(self):
        writer = WireWriter(compress=True)
        writer.write_name(Name("early.example.com"))
        writer.write_bytes(b"\x00" * 0x4000)
        before = writer.offset
        writer.write_name(Name("early.example.com"))
        # The *target* is early enough even though the reference is far.
        assert writer.offset - before == 2


class TestWireLimits:
    def test_max_length_label_roundtrips(self):
        label = "x" * 63
        name = Name(f"{label}.example")
        writer = WireWriter()
        writer.write_name(name)
        assert WireReader(writer.getvalue()).read_name() == name

    def test_max_length_name_roundtrips(self):
        # Four 61-byte labels: 4 * 62 + 1 = 249 ≤ 255 wire bytes.
        name = Name(".".join(["y" * 61] * 4))
        assert name.wire_length <= 255
        writer = WireWriter()
        writer.write_name(name)
        assert WireReader(writer.getvalue()).read_name() == name

    def test_reserved_label_type_rejected(self):
        # Length byte 0x40 is the reserved 01 label type (> 63).
        with pytest.raises(WireFormatError):
            WireReader(b"\x40" + b"a" * 0x40 + b"\x00").read_name()

    def test_wire_name_exceeding_255_rejected(self):
        # Five 62-byte labels decode to a 316-byte name: Name refuses.
        data = b"".join(b"\x3e" + b"z" * 62 for _ in range(5)) + b"\x00"
        with pytest.raises(ValueError):
            WireReader(data).read_name()


class TestTruncatedBuffers:
    def test_empty_buffer_name(self):
        with pytest.raises(WireFormatError):
            WireReader(b"").read_name()

    def test_name_without_terminator(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x03www").read_name()

    def test_truncated_pointer_second_byte(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x00\xc0", offset=1).read_name()

    def test_truncated_u32(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x01\x02\x03").read_u32()

    def test_truncated_character_string(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x05ab").read_character_string()

    def test_seek_out_of_range(self):
        with pytest.raises(WireFormatError):
            WireReader(b"abc").seek(4)

    def test_negative_read_rejected(self):
        with pytest.raises(WireFormatError):
            WireReader(b"abc").read_bytes(-1)

    @given(st.binary(max_size=64))
    def test_arbitrary_bytes_never_crash_reader(self, data):
        """Malformed input must fail with WireFormatError (or Name's
        ValueError), never an unhandled exception."""
        try:
            WireReader(data).read_name()
        except ValueError:
            pass

    def test_message_truncated_mid_record(self):
        message = make_response(
            make_query(1, "pool.ntp.org", RRType.A),
            answers=[ResourceRecord(Name("pool.ntp.org"), RRType.A, 60,
                                    ARdata("192.0.2.1"))])
        wire = message.encode()
        for cut in (3, len(wire) // 2, len(wire) - 1):
            with pytest.raises(WireFormatError):
                Message.decode(wire[:cut])


RDATAS = [
    ARdata("192.0.2.33"),
    AAAARdata("2001:db8::33"),
    NSRdata(Name("ns1.example.com")),
    CNAMERdata(Name("real.example.com")),
    PTRRdata(Name("host.example.com")),
    SOARdata(Name("ns1.example.com"), Name("admin.example.com"),
             serial=2024, refresh=1, retry=2, expire=3, minimum=4),
    MXRdata(10, Name("mx.example.com")),
    TXTRdata(("hello", "world")),
]


class TestRdata:
    @pytest.mark.parametrize("rdata", RDATAS, ids=lambda r: type(r).__name__)
    def test_roundtrip_via_record(self, rdata):
        record = ResourceRecord(Name("x.example.com"), rdata.rrtype, 300, rdata)
        writer = WireWriter()
        record.to_wire(writer)
        decoded = ResourceRecord.from_wire(WireReader(writer.getvalue()))
        assert decoded.rdata == rdata
        assert decoded.name == record.name
        assert decoded.ttl == 300

    def test_a_rejects_ipv6(self):
        with pytest.raises(ValueError):
            ARdata("2001:db8::1")

    def test_aaaa_rejects_ipv4(self):
        with pytest.raises(ValueError):
            AAAARdata("192.0.2.1")

    def test_txt_accepts_single_string(self):
        assert TXTRdata("solo").strings == (b"solo",)

    def test_txt_rejects_empty(self):
        with pytest.raises(ValueError):
            TXTRdata(())

    def test_txt_rejects_oversized_chunk(self):
        with pytest.raises(ValueError):
            TXTRdata(("x" * 256,))

    def test_mx_preference_range(self):
        with pytest.raises(ValueError):
            MXRdata(70000, Name("mx.example.com"))

    def test_text_forms(self):
        assert ARdata("192.0.2.1").to_text() == "192.0.2.1"
        assert NSRdata(Name("ns.x.com")).to_text() == "ns.x.com"
        assert "2024" in SOARdata(Name("a.com"), Name("b.com"),
                                  serial=2024).to_text()


class TestFlags:
    def test_roundtrip_default(self):
        flags = Flags()
        assert Flags.from_wire(flags.to_wire()) == flags

    def test_roundtrip_all_set(self):
        flags = Flags(qr=True, opcode=2, aa=True, tc=True, rd=True,
                      ra=True, rcode=RCode.NXDOMAIN)
        assert Flags.from_wire(flags.to_wire()) == flags

    def test_unknown_rcode_becomes_servfail(self):
        decoded = Flags.from_wire(0x000F)
        assert decoded.rcode is RCode.SERVFAIL

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_decode_never_crashes(self, raw):
        Flags.from_wire(raw)


class TestMessage:
    def make_message(self) -> Message:
        query = make_query(0x1234, "pool.ntp.org", RRType.A)
        return make_response(
            query,
            answers=[
                ResourceRecord(Name("pool.ntp.org"), RRType.A, 60,
                               ARdata("192.0.2.1")),
                ResourceRecord(Name("pool.ntp.org"), RRType.A, 60,
                               ARdata("192.0.2.2")),
            ],
            authority=[
                ResourceRecord(Name("ntp.org"), RRType.NS, 3600,
                               NSRdata(Name("ns1.ntp.org"))),
            ],
            additional=[
                ResourceRecord(Name("ns1.ntp.org"), RRType.A, 3600,
                               ARdata("192.0.2.53")),
            ],
            authoritative=True,
        )

    def test_full_roundtrip(self):
        message = self.make_message()
        decoded = Message.decode(message.encode())
        assert decoded.txid == message.txid
        assert decoded.flags == message.flags
        assert decoded.questions == message.questions
        assert decoded.answers == message.answers
        assert decoded.authority == message.authority
        assert decoded.additional == message.additional

    def test_roundtrip_without_compression(self):
        message = self.make_message()
        decoded = Message.decode(message.encode(compress=False))
        assert decoded.answers == message.answers

    def test_compression_reduces_size(self):
        message = self.make_message()
        assert len(message.encode(compress=True)) < len(
            message.encode(compress=False))

    def test_query_construction(self):
        query = make_query(7, "example.com", RRType.AAAA)
        assert not query.is_response
        assert query.flags.rd
        assert query.question.qtype is RRType.AAAA

    def test_response_echoes_txid_and_question(self):
        query = make_query(99, "example.com", RRType.A)
        response = make_response(query, rcode=RCode.NXDOMAIN)
        assert response.txid == 99
        assert response.is_response
        assert response.rcode is RCode.NXDOMAIN
        assert response.question == query.question

    def test_question_property_requires_exactly_one(self):
        message = Message(txid=1)
        with pytest.raises(ValueError):
            _ = message.question

    def test_txid_range_validated(self):
        with pytest.raises(ValueError):
            Message(txid=0x10000)

    def test_answers_for(self):
        message = self.make_message()
        matches = message.answers_for(Name("pool.ntp.org"), RRType.A)
        assert len(matches) == 2

    def test_decode_garbage_raises(self):
        with pytest.raises(WireFormatError):
            Message.decode(b"\x00\x01")

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            ResourceRecord(Name("a.com"), RRType.A, -1, ARdata("192.0.2.1"))

    @settings(max_examples=50)
    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.lists(st.integers(min_value=0, max_value=255), max_size=8))
    def test_address_lists_roundtrip(self, txid, octets):
        answers = [
            ResourceRecord(Name("pool.example.org"), RRType.A, 60,
                           ARdata(IPAddress(f"10.1.2.{value}")))
            for value in octets
        ]
        message = Message(txid=txid, flags=Flags(qr=True),
                          questions=[Question(Name("pool.example.org"),
                                              RRType.A)],
                          answers=answers)
        decoded = Message.decode(message.encode())
        assert decoded.answers == answers
