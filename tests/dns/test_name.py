"""Tests for domain names."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import MAX_LABEL_LENGTH, Name, NameError_

label_st = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1, max_size=20,
)
name_st = st.lists(label_st, min_size=0, max_size=5).map(
    lambda labels: Name(".".join(labels) if labels else ".")
)


class TestConstruction:
    def test_from_text(self):
        name = Name("www.example.com")
        assert len(name) == 3
        assert name.labels == (b"www", b"example", b"com")

    def test_trailing_dot_ignored(self):
        assert Name("example.com.") == Name("example.com")

    def test_root_from_dot(self):
        assert Name(".").is_root
        assert Name("").is_root
        assert Name.root().is_root

    def test_copy_constructor(self):
        original = Name("a.b")
        assert Name(original) == original

    def test_from_labels(self):
        assert Name.from_labels([b"www", b"example", b"com"]) == Name("www.example.com")

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name("a..b")

    def test_oversized_label_rejected(self):
        with pytest.raises(NameError_):
            Name("a" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_max_label_accepted(self):
        Name("a" * MAX_LABEL_LENGTH + ".com")

    def test_oversized_name_rejected(self):
        label = "a" * 63
        with pytest.raises(NameError_):
            Name(".".join([label] * 5))

    def test_non_ascii_rejected(self):
        with pytest.raises(NameError_):
            Name("exämple.com")


class TestComparison:
    def test_case_insensitive_equality(self):
        assert Name("Example.COM") == Name("example.com")

    def test_hash_case_insensitive(self):
        assert len({Name("A.b"), Name("a.B")}) == 1

    def test_string_equality(self):
        assert Name("example.com") == "EXAMPLE.com"

    def test_inequality(self):
        assert Name("a.com") != Name("b.com")

    def test_ordering_is_canonical(self):
        # DNS canonical order compares from the rightmost label.
        assert Name("z.a.com") < Name("a.b.com")

    def test_case_preserved_in_text(self):
        assert Name("WwW.Example.com").to_text() == "WwW.Example.com"


class TestStructure:
    def test_parent(self):
        assert Name("a.b.c").parent() == Name("b.c")

    def test_parent_of_root_raises(self):
        with pytest.raises(NameError_):
            Name.root().parent()

    def test_child(self):
        assert Name("example.com").child("www") == Name("www.example.com")

    def test_is_subdomain_of_self(self):
        assert Name("a.com").is_subdomain_of(Name("a.com"))

    def test_is_subdomain_of_parent(self):
        assert Name("www.a.com").is_subdomain_of(Name("a.com"))

    def test_not_subdomain_of_sibling(self):
        assert not Name("www.a.com").is_subdomain_of(Name("b.com"))

    def test_everything_is_subdomain_of_root(self):
        assert Name("x.y.z").is_subdomain_of(Name.root())

    def test_partial_label_is_not_subdomain(self):
        # "badexample.com" must not count as under "example.com".
        assert not Name("badexample.com").is_subdomain_of(Name("example.com"))

    def test_subdomain_case_insensitive(self):
        assert Name("www.EXAMPLE.com").is_subdomain_of(Name("example.COM"))

    def test_relativize(self):
        assert Name("www.example.com").relativize(Name("example.com")) == (b"www",)

    def test_relativize_outside_raises(self):
        with pytest.raises(NameError_):
            Name("www.other.com").relativize(Name("example.com"))

    def test_ancestors(self):
        chain = list(Name("a.b.c").ancestors())
        assert chain == [Name("a.b.c"), Name("b.c"), Name("c"), Name.root()]

    def test_wire_length(self):
        # www(4) + example(8) + com(4) + root(1)
        assert Name("www.example.com").wire_length == 17
        assert Name.root().wire_length == 1


class TestText:
    def test_root_text(self):
        assert Name.root().to_text() == "."

    def test_roundtrip(self):
        assert Name(Name("a.b.c").to_text()) == Name("a.b.c")

    @given(name_st)
    def test_text_roundtrip_property(self, name):
        assert Name(name.to_text()) == name

    @given(name_st, name_st)
    def test_subdomain_concat_property(self, child_part, base):
        if child_part.is_root:
            combined = base
        else:
            try:
                combined = Name(child_part.to_text() + "." + base.to_text()
                                if not base.is_root else child_part.to_text())
            except NameError_:
                return  # exceeded length limits; fine
        assert combined.is_subdomain_of(base)
