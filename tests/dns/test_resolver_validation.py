"""Unit tests of the recursive resolver's response-acceptance checks.

Each test injects one precisely crafted forged datagram against a live
resolution and asserts it is rejected for the right reason — the checks
that make off-path poisoning a race rather than a certainty.
"""

import pytest

from repro.dns.message import Flags, Message, Question, ResourceRecord
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import ARdata
from repro.dns.resolver import ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.packet import Datagram

from tests.dns.conftest import build_dns_world

QNAME = Name("pool.ntppool.org")
FORGED_ADDRESS = "203.0.113.13"


def weak_world():
    """Resolver with fully predictable TXID (0) and ports."""
    world = build_dns_world(
        seed=170,
        resolver_config=ResolverConfig(txid_bits=1, randomize_txid=False))
    world.resolver.host._randomize_ports = False
    return world


def forged_message(txid=0, qname=QNAME, qtype=RRType.A,
                   rcode=RCode.NOERROR):
    return Message(
        txid=txid,
        flags=Flags(qr=True, aa=True, rcode=rcode),
        questions=[Question(qname, qtype)],
        answers=[ResourceRecord(qname, RRType.A, 3600,
                                ARdata(FORGED_ADDRESS))])


def start_resolution_and_inject(world, message, src=None, dst_port=32768):
    """Kick off a lookup, then inject one forged reply at the resolver."""
    outcomes = []
    world.resolver.resolve(QNAME, RRType.A, outcomes.append)
    forged = Datagram(
        src=src or Endpoint(IPAddress("10.0.0.1"), 53),
        dst=Endpoint(IPAddress("10.0.1.1"), dst_port),
        payload=message.encode())
    world.internet.inject(forged, at_node="core")
    world.simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


def was_poisoned(outcome) -> bool:
    return any(str(record.rdata.address) == FORGED_ADDRESS
               for record in outcome.records)


class TestAcceptanceChecks:
    def test_baseline_perfect_forgery_wins(self):
        """Sanity: with everything guessed right, the forgery lands."""
        world = weak_world()
        outcome = start_resolution_and_inject(world, forged_message(txid=0))
        assert outcome.ok
        assert was_poisoned(outcome)
        assert world.resolver.stats.poisoned_acceptances == 1

    def test_wrong_txid_rejected(self):
        world = weak_world()
        outcome = start_resolution_and_inject(world, forged_message(txid=1))
        assert not was_poisoned(outcome)
        assert world.resolver.stats.spoofs_rejected >= 1
        assert world.resolver.stats.poisoned_acceptances == 0

    def test_wrong_destination_port_never_arrives(self):
        world = weak_world()
        outcome = start_resolution_and_inject(world, forged_message(txid=0),
                                              dst_port=40000)
        assert not was_poisoned(outcome)
        assert world.resolver.stats.poisoned_acceptances == 0

    def test_wrong_source_address_rejected(self):
        """Claiming to be the org server while the resolver asked the
        root must fail the source check."""
        world = weak_world()
        outcome = start_resolution_and_inject(
            world, forged_message(txid=0),
            src=Endpoint(IPAddress("10.0.0.2"), 53))
        assert not was_poisoned(outcome)
        assert world.resolver.stats.spoofs_rejected >= 1

    def test_wrong_source_port_rejected(self):
        world = weak_world()
        outcome = start_resolution_and_inject(
            world, forged_message(txid=0),
            src=Endpoint(IPAddress("10.0.0.1"), 5353))
        assert not was_poisoned(outcome)

    def test_wrong_question_name_rejected(self):
        world = weak_world()
        outcome = start_resolution_and_inject(
            world, forged_message(txid=0, qname=Name("evil.ntppool.org")))
        assert not was_poisoned(outcome)
        assert world.resolver.stats.spoofs_rejected >= 1

    def test_wrong_question_type_rejected(self):
        world = weak_world()
        message = forged_message(txid=0)
        message.questions = [Question(QNAME, RRType.AAAA)]
        outcome = start_resolution_and_inject(world, message)
        assert not was_poisoned(outcome)

    def test_query_bit_not_response_rejected(self):
        world = weak_world()
        message = forged_message(txid=0)
        message.flags = Flags(qr=False)
        outcome = start_resolution_and_inject(world, message)
        assert not was_poisoned(outcome)

    def test_garbage_payload_rejected(self):
        world = weak_world()
        outcomes = []
        world.resolver.resolve(QNAME, RRType.A, outcomes.append)
        forged = Datagram(src=Endpoint(IPAddress("10.0.0.1"), 53),
                          dst=Endpoint(IPAddress("10.0.1.1"), 32768),
                          payload=b"\xff\x00garbage")
        world.internet.inject(forged, at_node="core")
        world.simulator.run()
        assert not was_poisoned(outcomes[0])
        assert world.resolver.stats.spoofs_rejected >= 1


class TestBailiwick:
    def test_out_of_zone_answer_records_filtered(self):
        """A genuine-looking response carrying extra out-of-bailiwick
        records must not pollute the cache (Kaminsky-style payload)."""
        world = weak_world()
        message = forged_message(txid=0)
        # The spoofed root response also tries to plant www.example.com.
        message.answers.append(ResourceRecord(
            Name("www.victim.example"), RRType.A, 86_400,
            ARdata("203.0.113.99")))
        outcome = start_resolution_and_inject(world, message)
        # The in-zone forgery landed (weak resolver, exact guess)...
        assert was_poisoned(outcome)
        # Bailiwick here is the root zone (the resolver asked a root
        # server), so nothing is filtered — but the victim record must
        # not satisfy a *different* question from cache unless cached
        # under its own key legitimately.
        cached = world.resolver.cache.get(Name("www.victim.example"),
                                          RRType.A)
        assert cached is None

    def test_tld_server_cannot_speak_above_its_zone(self):
        """An on-path attacker splices a record for a name *above* the
        queried zone into a genuine referral; the resolver must filter
        it (bailiwick) and never cache it."""
        from repro.dns.wire import WireFormatError
        from repro.netsim.internet import TapAction

        world = build_dns_world(seed=171)
        poison_name = Name("a.root-servers.net")  # above the org zone

        def splice(link, datagram):
            if datagram.src.port != 53:
                return TapAction.passthrough()
            try:
                message = Message.decode(datagram.payload)
            except WireFormatError:
                return TapAction.passthrough()
            # Only touch the org server's referral responses.
            if (not message.is_response
                    or datagram.src.address != IPAddress("10.0.0.2")):
                return TapAction.passthrough()
            message.additional.append(ResourceRecord(
                poison_name, RRType.A, 86_400, ARdata("203.0.113.99")))
            return TapAction.rewrite(message.encode())

        world.internet.add_tap("core--tld-net", splice)
        outcomes = []
        world.resolver.resolve(QNAME, RRType.A, outcomes.append)
        world.simulator.run()
        # Resolution itself succeeds (the referral was otherwise valid)...
        assert outcomes[0].ok
        assert not was_poisoned(outcomes[0])
        # ...the spliced record was dropped by the bailiwick filter...
        assert world.resolver.stats.bailiwick_rejected_records >= 1
        # ...and never entered the cache.
        assert world.resolver.cache.get(poison_name, RRType.A) is None
