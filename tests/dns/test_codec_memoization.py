"""The TXID-independent codec memos must be invisible semantically.

The fast path memoizes `Message.encode`/`Message.decode` on everything
but the transaction ID. These tests pin the edges where a sloppy memo
would change behaviour: TXID patching, case-exact keys, mutation
isolation between hits, and adversarial compression pointers aimed at
the ID bytes.
"""

from repro.dns.message import Flags, Message, Question, ResourceRecord, make_query
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import ARdata
from repro.dns.rrtype import RRType
from repro.netsim.address import IPAddress


def _reply(txid: int, name: str = "pool.ntp.org") -> Message:
    return Message(
        txid=txid,
        flags=Flags(qr=True, ra=True, rcode=RCode.NOERROR),
        questions=[Question(Name(name), RRType.A)],
        answers=[ResourceRecord(Name(name), RRType.A, 60,
                                ARdata(IPAddress("192.0.2.1")))],
    )


class TestEncodeMemo:
    def test_txid_varies_tail_identical(self):
        wires = [_reply(txid).encode() for txid in (0x0000, 0x1234, 0xFFFF)]
        assert wires[0][2:] == wires[1][2:] == wires[2][2:]
        assert wires[1][:2] == b"\x12\x34"

    def test_case_differences_never_share_bytes(self):
        lower = _reply(7, "pool.ntp.org").encode()
        upper = _reply(7, "POOL.ntp.org").encode()
        # Case-insensitively equal names (same DNS identity) must still
        # encode with their own octets — a folded memo key would leak
        # the first-seen spelling into the second message's wire.
        assert Name("pool.ntp.org") == Name("POOL.ntp.org")
        assert lower != upper
        assert b"POOL" in upper and b"pool" in lower

    def test_memoized_encode_matches_cold_encode(self):
        first = _reply(1).encode()
        again = _reply(2).encode()
        cold = Message.decode(again).encode()
        assert again == cold
        assert first[2:] == again[2:]


class TestDecodeMemo:
    def test_txid_patched_on_hit(self):
        wire = _reply(0x0101).encode()
        one = Message.decode(wire)
        two = Message.decode(b"\xbe\xef" + wire[2:])
        assert one.txid == 0x0101
        assert two.txid == 0xBEEF
        assert two.questions == one.questions
        assert two.answers == one.answers

    def test_hits_get_independent_section_lists(self):
        wire = _reply(0x2222).encode()
        first = Message.decode(wire)
        first.answers.append(first.answers[0])
        second = Message.decode(wire)
        assert len(second.answers) == 1

    def test_pointer_into_id_bytes_is_never_memoized(self):
        # Craft a reply whose qname is a compression pointer to offset
        # 0 — the TXID bytes themselves. Its parse depends on the ID,
        # so two wires sharing a tail must be parsed independently.
        def crafted(txid: bytes) -> bytes:
            # Query flags 0x0000: the byte after the TXID label bytes
            # is 0x00, terminating the pointed-to name.
            header = txid + b"\x00\x00" + b"\x00\x01\x00\x00\x00\x00\x00\x00"
            # QNAME = pointer to offset 0; QTYPE=A; QCLASS=IN.
            question = b"\xc0\x00" + b"\x00\x01" + b"\x00\x01"
            return header + question

        # txid bytes that read as a 1-label name: length 1, byte "a".
        first = Message.decode(crafted(b"\x01a"))
        second = Message.decode(crafted(b"\x01b"))
        assert first.questions[0].qname == Name("a")
        assert second.questions[0].qname == Name("b")
