"""Tests for authoritative zone semantics."""

import pytest

from repro.dns.name import Name
from repro.dns.rdata import AAAARdata, ARdata, CNAMERdata, NSRdata, TXTRdata
from repro.dns.rrtype import RRType
from repro.dns.zone import LookupStatus, Zone, ZoneError


@pytest.fixture
def zone() -> Zone:
    z = Zone("example.com")
    z.add_record("example.com", NSRdata(Name("ns1.example.com")))
    z.add_record("ns1.example.com", ARdata("192.0.2.53"))
    z.add_record("www.example.com", ARdata("192.0.2.80"))
    z.add_record("www.example.com", ARdata("192.0.2.81"))
    z.add_record("www.example.com", AAAARdata("2001:db8::80"))
    z.add_record("alias.example.com", CNAMERdata(Name("www.example.com")))
    z.add_delegation("sub.example.com", "ns1.sub.example.com",
                     glue=[ARdata("192.0.2.99")])
    return z


class TestBasicLookup:
    def test_answer(self, zone):
        result = zone.lookup(Name("www.example.com"), RRType.A)
        assert result.status is LookupStatus.ANSWER
        assert len(result.answers) == 2

    def test_answer_other_family(self, zone):
        result = zone.lookup(Name("www.example.com"), RRType.AAAA)
        assert result.status is LookupStatus.ANSWER
        assert len(result.answers) == 1

    def test_nxdomain(self, zone):
        result = zone.lookup(Name("missing.example.com"), RRType.A)
        assert result.status is LookupStatus.NXDOMAIN
        assert result.authority[0].rrtype is RRType.SOA

    def test_nodata(self, zone):
        result = zone.lookup(Name("www.example.com"), RRType.TXT)
        assert result.status is LookupStatus.NODATA
        assert result.authority[0].rrtype is RRType.SOA

    def test_empty_non_terminal_is_nodata_not_nxdomain(self):
        z = Zone("example.com")
        z.add_record("a.b.example.com", ARdata("192.0.2.1"))
        result = z.lookup(Name("b.example.com"), RRType.A)
        assert result.status is LookupStatus.NODATA

    def test_not_in_zone(self, zone):
        result = zone.lookup(Name("other.org"), RRType.A)
        assert result.status is LookupStatus.NOT_IN_ZONE

    def test_apex_ns_is_answer(self, zone):
        result = zone.lookup(Name("example.com"), RRType.NS)
        assert result.status is LookupStatus.ANSWER

    def test_any_query_collects_types(self, zone):
        result = zone.lookup(Name("www.example.com"), RRType.ANY)
        assert result.status is LookupStatus.ANSWER
        types = {record.rrtype for record in result.answers}
        assert types == {RRType.A, RRType.AAAA}


class TestCName:
    def test_cname_returned_for_address_query(self, zone):
        result = zone.lookup(Name("alias.example.com"), RRType.A)
        assert result.status is LookupStatus.ANSWER
        assert result.answers[0].rrtype is RRType.CNAME

    def test_cname_query_returns_cname(self, zone):
        result = zone.lookup(Name("alias.example.com"), RRType.CNAME)
        assert result.status is LookupStatus.ANSWER
        assert result.answers[0].rrtype is RRType.CNAME


class TestDelegation:
    def test_referral_below_cut(self, zone):
        result = zone.lookup(Name("host.sub.example.com"), RRType.A)
        assert result.status is LookupStatus.DELEGATION
        assert result.authority[0].rrtype is RRType.NS
        assert result.additional[0].rdata.address == "192.0.2.99"

    def test_referral_at_cut(self, zone):
        result = zone.lookup(Name("sub.example.com"), RRType.A)
        assert result.status is LookupStatus.DELEGATION

    def test_delegating_apex_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_delegation("example.com", "ns.elsewhere.com")

    def test_delegation_outside_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_delegation("other.org", "ns.other.org")


class TestProviders:
    def test_provider_called_per_lookup(self):
        z = Zone("pool.example.org")
        calls = []

        def provider():
            calls.append(1)
            return [ARdata(f"10.0.0.{len(calls)}")]

        z.add_provider("pool.example.org", RRType.A, provider)
        first = z.lookup(Name("pool.example.org"), RRType.A)
        second = z.lookup(Name("pool.example.org"), RRType.A)
        assert first.answers[0].rdata.address == "10.0.0.1"
        assert second.answers[0].rdata.address == "10.0.0.2"

    def test_provider_type_mismatch_raises(self):
        z = Zone("pool.example.org")
        z.add_provider("pool.example.org", RRType.AAAA,
                       lambda: [ARdata("10.0.0.1")])
        with pytest.raises(ZoneError):
            z.lookup(Name("pool.example.org"), RRType.AAAA)

    def test_provider_plus_static_records(self):
        z = Zone("pool.example.org")
        z.add_record("pool.example.org", ARdata("10.0.0.100"))
        z.add_provider("pool.example.org", RRType.A,
                       lambda: [ARdata("10.0.0.1")])
        result = z.lookup(Name("pool.example.org"), RRType.A)
        addresses = {str(record.rdata.address) for record in result.answers}
        assert addresses == {"10.0.0.1", "10.0.0.100"}

    def test_provider_outside_zone_rejected(self):
        z = Zone("pool.example.org")
        with pytest.raises(ZoneError):
            z.add_provider("other.org", RRType.A, lambda: [])


class TestZoneValidation:
    def test_record_outside_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_record("www.other.org", ARdata("192.0.2.1"))

    def test_soa_present(self, zone):
        assert zone.soa.rrtype is RRType.SOA
        assert zone.soa.name == Name("example.com")

    def test_records_accessor(self, zone):
        assert len(zone.records("www.example.com", RRType.A)) == 2
        assert zone.records("www.example.com", RRType.TXT) == []

    def test_txt_record(self):
        z = Zone("example.com")
        z.add_record("info.example.com", TXTRdata("v=test1"))
        result = z.lookup(Name("info.example.com"), RRType.TXT)
        assert result.status is LookupStatus.ANSWER
