"""DnsCache under virtual time at scale: expiry ordering, LRU pressure,
and registry counters that fold bit-identically across shards."""

import pytest

from repro.dns.cache import DnsCache
from repro.dns.message import ResourceRecord
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import ARdata
from repro.dns.rrtype import RRType
from repro.telemetry.registry import MetricsRegistry, fold_snapshots


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def name(index):
    return Name(f"host{index}.example.com")


def record(index, ttl):
    return ResourceRecord(
        name(index), RRType.A, ttl,
        ARdata(f"172.16.{index // 250}.{index % 250 + 1}"))


@pytest.fixture
def clock():
    return FakeClock()


class TestExpiryOrderingAtScale:
    N = 1000

    def fill(self, clock):
        cache = DnsCache(clock=clock, max_entries=self.N)
        # Entry i expires at t = i + 1: a strict expiry ordering.
        for i in range(self.N):
            cache.put_positive(name(i), RRType.A, [record(i, ttl=i + 1)])
        return cache

    def test_entries_expire_in_ttl_order(self, clock):
        cache = self.fill(clock)
        # At virtual time t exactly the first t entries (TTLs 1..t)
        # have expired, regardless of insertion volume.
        for t in (1, 250, 999):
            clock.now = float(t)
            live = sum(
                1 for i in range(self.N)
                if cache.get(name(i), RRType.A) is not None)
            assert live == self.N - t

    def test_purge_expired_matches_virtual_time(self, clock):
        cache = self.fill(clock)
        clock.now = 400.0
        assert cache.purge_expired() == 400
        assert cache.size == self.N - 400
        clock.now = float(self.N)
        assert cache.purge_expired() == self.N - 400
        assert cache.size == 0

    def test_remaining_ttl_decays_with_virtual_time(self, clock):
        cache = DnsCache(clock=clock)
        cache.put_positive(name(0), RRType.A, [record(0, ttl=300)])
        clock.now = 120.0
        entry = cache.get(name(0), RRType.A)
        assert entry.records[0].ttl == 180


class TestLruAndNegativeEntries:
    def test_negative_entries_compete_for_lru_slots(self, clock):
        cache = DnsCache(clock=clock, max_entries=4)
        for i in range(4):
            cache.put_negative(name(i), RRType.A, RCode.NXDOMAIN,
                               negative_ttl=60)
        cache.put_positive(name(99), RRType.A, [record(99, ttl=60)])
        # Oldest negative entry was evicted to make room.
        assert cache.evictions == 1
        assert cache.get(name(0), RRType.A) is None
        assert cache.get(name(99), RRType.A) is not None

    def test_recently_hit_entry_survives_pressure(self, clock):
        cache = DnsCache(clock=clock, max_entries=4)
        for i in range(4):
            cache.put_positive(name(i), RRType.A, [record(i, ttl=600)])
        # Touch entry 0 so entry 1 becomes least-recently-used.
        assert cache.get(name(0), RRType.A) is not None
        cache.put_positive(name(4), RRType.A, [record(4, ttl=600)])
        assert cache.get(name(0), RRType.A) is not None
        assert cache.get(name(1), RRType.A) is None

    def test_negative_entry_expires_like_positive(self, clock):
        cache = DnsCache(clock=clock)
        cache.put_negative(name(0), RRType.A, RCode.NXDOMAIN,
                           negative_ttl=30)
        entry = cache.get(name(0), RRType.A)
        assert entry.is_negative and entry.rcode is RCode.NXDOMAIN
        clock.now = 31.0
        assert cache.get(name(0), RRType.A) is None


def run_shard_workload(shard_index, registry):
    """A deterministic per-shard cache workload; returns the cache."""
    clock = FakeClock()
    cache = DnsCache(clock=clock, max_entries=64, registry=registry,
                     label=f"shard{shard_index}")
    for i in range(100 + shard_index * 10):
        cache.put_positive(name(i), RRType.A, [record(i, ttl=120)])
    for i in range(150):
        cache.get(name(i), RRType.A)        # hits for live, misses past end
    clock.now = 121.0
    for i in range(20):
        cache.get(name(i), RRType.A)        # all expired: misses
    return cache


class TestRegistryCounters:
    def test_registry_counters_equal_integer_properties(self):
        registry = MetricsRegistry()
        cache = run_shard_workload(0, registry)
        assert cache.hits > 0 and cache.misses > 0 and cache.evictions > 0
        for counter, value in (("hits", cache.hits),
                               ("misses", cache.misses),
                               ("evictions", cache.evictions)):
            assert registry.value(f"dns.cache.{counter}",
                                  resolver="shard0") == value

    def test_uninstrumented_cache_publishes_nothing(self):
        cache = run_shard_workload(0, registry=None)
        assert cache.hits > 0
        assert "counter" not in MetricsRegistry().snapshot()

    def test_fold_is_order_invariant_for_integer_counters(self):
        snapshots = []
        caches = []
        for shard in range(4):
            registry = MetricsRegistry()
            caches.append(run_shard_workload(shard, registry))
            snapshots.append(registry.snapshot())

        forward = fold_snapshots(snapshots)
        reverse = fold_snapshots(list(reversed(snapshots)))
        # Counter state is integral, so the shard fold order cannot
        # change a single byte of the combined snapshot.
        assert forward.snapshot_json() == reverse.snapshot_json()

        # And the fold equals the sum of the per-shard truth.
        for shard, cache in enumerate(caches):
            assert forward.value("dns.cache.hits",
                                 resolver=f"shard{shard}") == cache.hits
        total_hits = sum(
            state for key, state in forward.snapshot()["counter"].items()
            if key.startswith("dns.cache.hits"))
        assert total_hits == sum(cache.hits for cache in caches)
