"""Integration tests: iterative resolution through the simulated tree."""

import pytest

from repro.dns.client import StubResolver
from repro.dns.message import make_query
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import ARdata, CNAMERdata
from repro.dns.resolver import ResolveOutcome, ResolveStatus, ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.address import IPAddress

from tests.dns.conftest import POOL_ADDRESSES, build_dns_world


def resolve_sync(world, qname, qtype=RRType.A) -> ResolveOutcome:
    """Run one resolution to completion and return the outcome."""
    results = []
    world.resolver.resolve(qname, qtype, results.append)
    world.simulator.run()
    assert len(results) == 1, "callback must fire exactly once"
    return results[0]


class TestIterativeResolution:
    def test_resolves_through_hierarchy(self, dns_world):
        outcome = resolve_sync(dns_world, "pool.ntppool.org")
        assert outcome.ok
        addresses = {str(record.rdata.address) for record in outcome.records}
        assert addresses == set(POOL_ADDRESSES)

    def test_walks_root_then_tld_then_auth(self, dns_world):
        resolve_sync(dns_world, "pool.ntppool.org")
        assert dns_world.root_server.queries_served == 1
        assert dns_world.org_server.queries_served == 1
        assert dns_world.ntp_server.queries_served == 1

    def test_nxdomain(self, dns_world):
        outcome = resolve_sync(dns_world, "missing.ntppool.org")
        assert outcome.status is ResolveStatus.NXDOMAIN

    def test_nodata(self, dns_world):
        outcome = resolve_sync(dns_world, "pool.ntppool.org", RRType.TXT)
        assert outcome.status is ResolveStatus.NODATA

    def test_cache_hit_on_second_lookup(self, dns_world):
        first = resolve_sync(dns_world, "pool.ntppool.org")
        queries_before = dns_world.resolver.stats.upstream_queries
        second = resolve_sync(dns_world, "pool.ntppool.org")
        assert second.ok
        assert second.from_cache
        assert dns_world.resolver.stats.upstream_queries == queries_before

    def test_cache_expires_with_virtual_time(self, dns_world):
        resolve_sync(dns_world, "pool.ntppool.org")
        # Pool records have ttl=60; jump past expiry.
        dns_world.simulator.run(until=dns_world.simulator.now + 61)
        outcome = resolve_sync(dns_world, "pool.ntppool.org")
        assert outcome.ok
        assert not outcome.from_cache

    def test_negative_cache(self, dns_world):
        resolve_sync(dns_world, "missing.ntppool.org")
        queries_before = dns_world.resolver.stats.upstream_queries
        outcome = resolve_sync(dns_world, "missing.ntppool.org")
        assert outcome.status is ResolveStatus.NXDOMAIN
        assert outcome.from_cache
        assert dns_world.resolver.stats.upstream_queries == queries_before

    def test_cname_chase(self, dns_world):
        dns_world.pool_zone.add_record(
            "best.ntppool.org", CNAMERdata(Name("pool.ntppool.org")))
        outcome = resolve_sync(dns_world, "best.ntppool.org")
        assert outcome.ok
        assert outcome.records[0].rrtype is RRType.CNAME
        tail = [record for record in outcome.records
                if record.rrtype is RRType.A]
        assert len(tail) == len(POOL_ADDRESSES)

    def test_cname_loop_servfails(self, dns_world):
        dns_world.pool_zone.add_record(
            "l1.ntppool.org", CNAMERdata(Name("l2.ntppool.org")))
        dns_world.pool_zone.add_record(
            "l2.ntppool.org", CNAMERdata(Name("l1.ntppool.org")))
        outcome = resolve_sync(dns_world, "l1.ntppool.org")
        assert outcome.status is ResolveStatus.SERVFAIL

    def test_upstream_queries_counted(self, dns_world):
        outcome = resolve_sync(dns_world, "pool.ntppool.org")
        assert outcome.upstream_queries == 3  # root, org, auth


class TestFailureHandling:
    def test_unreachable_root_times_out_to_servfail(self):
        world = build_dns_world(
            resolver_config=ResolverConfig(query_timeout=0.5,
                                           max_retries_per_server=1))
        # Point the resolver at a black-hole address by removing the host.
        world.internet.topology.remove_link("core", "root-net")
        outcome = resolve_sync(world, "pool.ntppool.org")
        assert outcome.status is ResolveStatus.SERVFAIL
        assert world.resolver.stats.timeouts > 0

    def test_lossy_network_retries_and_succeeds(self):
        from repro.netsim.link import LinkProfile
        world = build_dns_world(
            seed=11,
            resolver_config=ResolverConfig(query_timeout=0.3,
                                           max_retries_per_server=8),
            link_profile=LinkProfile(latency=0.01, loss=0.2))
        outcome = resolve_sync(world, "pool.ntppool.org")
        assert outcome.ok

    def test_refused_for_unhosted_zone_servfails(self, dns_world):
        outcome = resolve_sync(dns_world, "www.example.net")
        # Root has no delegation for "net": authoritative NXDOMAIN.
        assert outcome.status is ResolveStatus.NXDOMAIN


class TestServingClients:
    def test_stub_query_through_resolver(self, dns_world):
        stub = StubResolver(dns_world.client, dns_world.simulator,
                            IPAddress("10.0.1.1"))
        outcomes = []
        stub.query("pool.ntppool.org", RRType.A, outcomes.append)
        dns_world.simulator.run()
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert {str(a) for a in outcomes[0].addresses} == set(POOL_ADDRESSES)

    def test_stub_sees_nxdomain(self, dns_world):
        stub = StubResolver(dns_world.client, dns_world.simulator,
                            IPAddress("10.0.1.1"))
        outcomes = []
        stub.query("nope.ntppool.org", RRType.A, outcomes.append)
        dns_world.simulator.run()
        assert outcomes[0].response.rcode is RCode.NXDOMAIN

    def test_stub_timeout_when_resolver_gone(self, dns_world):
        stub = StubResolver(dns_world.client, dns_world.simulator,
                            IPAddress("10.9.9.9"), timeout=0.5, retries=1)
        outcomes = []
        stub.query("pool.ntppool.org", RRType.A, outcomes.append)
        dns_world.simulator.run()
        assert outcomes[0].timed_out
        assert outcomes[0].attempts == 2

    def test_stub_rejects_wrong_txid_response(self, dns_world):
        """A forged response with the wrong TXID must be ignored."""
        from repro.netsim.packet import Datagram
        from repro.netsim.address import Endpoint

        stub = StubResolver(dns_world.client, dns_world.simulator,
                            IPAddress("10.0.1.1"), timeout=5.0)
        outcomes = []
        stub.query("pool.ntppool.org", RRType.A, outcomes.append)

        # Inject a forged response to every plausible client port with a
        # wrong TXID before the real answer arrives.
        client_sockets = dns_world.client.open_sockets
        assert len(client_sockets) == 1
        target = client_sockets[0].endpoint
        forged_reply = make_query(0xDEAD, "pool.ntppool.org", RRType.A)
        forged_reply.flags = type(forged_reply.flags)(qr=True)
        forged = Datagram(
            src=Endpoint(IPAddress("10.0.1.1"), 53),
            dst=target,
            payload=forged_reply.encode())
        dns_world.internet.inject(forged, at_node="client-net")
        dns_world.simulator.run()
        assert stub.stats.spoofs_rejected >= 1
        assert outcomes[0].ok
        assert outcomes[0].response.txid != 0xDEAD


class TestAuthoritativeServer:
    def test_refuses_foreign_zone(self, dns_world):
        query = make_query(1, "www.google.com", RRType.A)
        response = dns_world.ntp_server.build_response(query)
        assert response.rcode is RCode.REFUSED

    def test_referral_includes_glue(self, dns_world):
        query = make_query(2, "pool.ntppool.org", RRType.A,
                           recursion_desired=False)
        response = dns_world.org_server.build_response(query)
        assert response.rcode is RCode.NOERROR
        assert response.authority[0].rrtype is RRType.NS
        assert any(record.rdata.address == "10.0.0.3"
                   for record in response.additional)

    def test_zone_for_longest_match(self, dns_world):
        from repro.dns.zone import Zone
        sub_zone = Zone("deep.ntppool.org")
        sub_zone.add_record("x.deep.ntppool.org", ARdata("172.16.9.1"))
        dns_world.ntp_server.add_zone(sub_zone)
        assert dns_world.ntp_server.zone_for(
            Name("x.deep.ntppool.org")) is sub_zone
