"""Tests for RR type / class / RCODE registries."""

import pytest

from repro.dns.rcode import RCode
from repro.dns.rrtype import (
    RRClass,
    RRType,
    address_family_for_type,
    type_for_address_family,
)


class TestRRType:
    def test_wire_values_match_rfc(self):
        assert RRType.A == 1
        assert RRType.NS == 2
        assert RRType.CNAME == 5
        assert RRType.SOA == 6
        assert RRType.PTR == 12
        assert RRType.MX == 15
        assert RRType.TXT == 16
        assert RRType.AAAA == 28
        assert RRType.ANY == 255

    def test_from_text(self):
        assert RRType.from_text("aaaa") is RRType.AAAA
        assert RRType.from_text(" A ") is RRType.A

    def test_from_text_unknown(self):
        with pytest.raises(ValueError):
            RRType.from_text("BOGUS")

    def test_is_address(self):
        assert RRType.A.is_address
        assert RRType.AAAA.is_address
        assert not RRType.NS.is_address

    def test_family_mapping_roundtrip(self):
        for family in (4, 6):
            assert address_family_for_type(
                type_for_address_family(family)) == family

    def test_family_for_non_address_type(self):
        with pytest.raises(ValueError):
            address_family_for_type(RRType.TXT)

    def test_type_for_bad_family(self):
        with pytest.raises(ValueError):
            type_for_address_family(5)


class TestRRClass:
    def test_in_is_one(self):
        assert RRClass.IN == 1

    def test_from_text(self):
        assert RRClass.from_text("in") is RRClass.IN
        with pytest.raises(ValueError):
            RRClass.from_text("XX")


class TestRCode:
    def test_wire_values(self):
        assert RCode.NOERROR == 0
        assert RCode.FORMERR == 1
        assert RCode.SERVFAIL == 2
        assert RCode.NXDOMAIN == 3
        assert RCode.REFUSED == 5

    def test_is_error(self):
        assert not RCode.NOERROR.is_error
        assert RCode.NXDOMAIN.is_error

    def test_from_text(self):
        assert RCode.from_text("nxdomain") is RCode.NXDOMAIN
        with pytest.raises(ValueError):
            RCode.from_text("NOPE")
