"""Shared fixtures: a small simulated DNS hierarchy.

Layout (all attached to a star topology around "core"):

* root-ns   10.0.0.1 — serves "."            (delegates org)
* org-ns    10.0.0.2 — serves "org"          (delegates ntppool.org)
* ntp-ns    10.0.0.3 — serves "ntppool.org"  (pool A records)
* resolver  10.0.1.1 — recursive resolver
* client    10.0.2.1 — stub client
"""

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.dns.name import Name
from repro.dns.rdata import ARdata
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.netsim.address import IPAddress, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.util.rng import RngRegistry

POOL_ADDRESSES = [f"172.16.0.{index}" for index in range(1, 9)]


@dataclass
class DnsWorld:
    simulator: Simulator
    internet: Internet
    resolver: RecursiveResolver
    client: Host
    root_server: AuthoritativeServer
    org_server: AuthoritativeServer
    ntp_server: AuthoritativeServer
    pool_zone: Zone
    pool_addresses: List[str] = field(default_factory=lambda: list(POOL_ADDRESSES))


def build_dns_world(seed: int = 7, resolver_config: ResolverConfig = None,
                    link_profile: LinkProfile = None) -> DnsWorld:
    registry = RngRegistry(seed)
    simulator = Simulator()
    topology = Topology(registry)
    profile = link_profile or LinkProfile(latency=0.01)
    for leaf in ["client-net", "resolver-net", "root-net", "tld-net", "auth-net"]:
        topology.add_link("core", leaf, profile)
    internet = Internet(simulator, topology, registry)

    root_host = internet.add_host(Host("root-ns", "root-net", [ip("10.0.0.1")]))
    org_host = internet.add_host(Host("org-ns", "tld-net", [ip("10.0.0.2")]))
    ntp_host = internet.add_host(Host("ntp-ns", "auth-net", [ip("10.0.0.3")]))
    resolver_host = internet.add_host(
        Host("resolver", "resolver-net", [ip("10.0.1.1")],
             rng=registry.stream("resolver-ports")))
    client_host = internet.add_host(Host("client", "client-net", [ip("10.0.2.1")]))

    root_zone = Zone(".", soa_mname="a.root-servers.net")
    root_zone.add_delegation("org", "ns.org", glue=[ARdata("10.0.0.2")])

    org_zone = Zone("org", soa_mname="ns.org")
    org_zone.add_delegation("ntppool.org", "ns1.ntppool.org",
                            glue=[ARdata("10.0.0.3")])

    pool_zone = Zone("ntppool.org", soa_mname="ns1.ntppool.org")
    pool_zone.add_record("ns1.ntppool.org", ARdata("10.0.0.3"))
    for address in POOL_ADDRESSES:
        pool_zone.add_record("pool.ntppool.org", ARdata(address), ttl=60)

    root_server = AuthoritativeServer(root_host, [root_zone])
    org_server = AuthoritativeServer(org_host, [org_zone])
    ntp_server = AuthoritativeServer(ntp_host, [pool_zone])

    resolver = RecursiveResolver(
        resolver_host, simulator,
        root_hints=[(Name("a.root-servers.net"), IPAddress("10.0.0.1"))],
        config=resolver_config or ResolverConfig(),
        rng=registry.stream("resolver-txid"),
    )
    return DnsWorld(simulator=simulator, internet=internet, resolver=resolver,
                    client=client_host, root_server=root_server,
                    org_server=org_server, ntp_server=ntp_server,
                    pool_zone=pool_zone)


@pytest.fixture
def dns_world() -> DnsWorld:
    return build_dns_world()
