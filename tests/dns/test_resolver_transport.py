"""The recursive resolver's transport ride: backoff, budgets, stats."""

import pytest

from repro.dns.resolver import ResolveStatus, ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.transport import RetryPolicy

from tests.dns.conftest import build_dns_world


def resolve_sync(world, qname, qtype=RRType.A):
    results = []
    world.resolver.resolve(qname, qtype, results.append)
    world.simulator.run()
    assert len(results) == 1
    return results[0]


class TestRetryPolicyDerivation:
    def test_backoff_enabled_by_default(self):
        policy = ResolverConfig().retry_policy()
        assert isinstance(policy, RetryPolicy)
        assert policy.backoff > 1.0

    def test_schedule_backs_off_and_caps(self):
        config = ResolverConfig(query_timeout=1.0, max_retries_per_server=3,
                                retry_backoff=2.0, retry_max_timeout=3.0)
        policy = config.retry_policy()
        timeouts = [policy.timeout_for(a)
                    for a in range(1, policy.max_attempts + 1)]
        assert timeouts == [1.0, 2.0, 3.0, 3.0]

    def test_cap_never_undercuts_first_timeout(self):
        policy = ResolverConfig(query_timeout=5.0,
                                retry_max_timeout=1.0).retry_policy()
        assert policy.timeout_for(1) == 5.0

    def test_backoff_validation(self):
        with pytest.raises(ValueError):
            ResolverConfig(retry_backoff=0.5)


class TestBackoffBehaviour:
    def test_dead_server_burns_the_backed_off_budget(self):
        world = build_dns_world(
            resolver_config=ResolverConfig(query_timeout=1.0,
                                           max_retries_per_server=2,
                                           retry_backoff=2.0,
                                           retry_max_timeout=None))
        world.internet.topology.remove_link("core", "root-net")
        outcome = resolve_sync(world, "pool.ntppool.org")
        assert outcome.status is ResolveStatus.SERVFAIL
        # One root server, three attempts: 1 + 2 + 4 virtual seconds.
        assert world.simulator.now == pytest.approx(7.0)
        assert world.resolver.stats.timeouts == 3
        assert world.resolver.stats.upstream_queries == 3

    def test_fixed_timeout_schedule_still_available(self):
        world = build_dns_world(
            resolver_config=ResolverConfig(query_timeout=1.0,
                                           max_retries_per_server=2,
                                           retry_backoff=1.0))
        world.internet.topology.remove_link("core", "root-net")
        resolve_sync(world, "pool.ntppool.org")
        assert world.simulator.now == pytest.approx(3.0)


class TestStatsParity:
    def test_success_path_counts_no_timeouts(self):
        world = build_dns_world()
        outcome = resolve_sync(world, "pool.ntppool.org")
        assert outcome.ok
        assert world.resolver.stats.timeouts == 0
        assert world.resolver.stats.upstream_queries == 3
        assert world.resolver.stats.responses_accepted == 3

    def test_lossy_path_counts_each_burned_attempt(self):
        from repro.netsim.link import LinkProfile
        world = build_dns_world(
            seed=11,
            resolver_config=ResolverConfig(query_timeout=0.3,
                                           max_retries_per_server=8),
            link_profile=LinkProfile(latency=0.01, loss=0.2))
        outcome = resolve_sync(world, "pool.ntppool.org")
        assert outcome.ok
        stats = world.resolver.stats
        # Every upstream query beyond the accepted answers timed out.
        assert stats.timeouts == stats.upstream_queries - stats.responses_accepted

    def test_fresh_txid_and_port_per_attempt(self):
        world = build_dns_world(
            resolver_config=ResolverConfig(query_timeout=0.5,
                                           max_retries_per_server=1,
                                           randomize_txid=False))
        world.internet.topology.remove_link("core", "root-net")
        resolve_sync(world, "pool.ntppool.org")
        # Sequential-TXID mode draws one TXID per attempt, so the
        # counter advanced once per upstream query.
        assert world.resolver._sequential_txid == \
            world.resolver.stats.upstream_queries
