"""Tests for the TTL/LRU DNS cache."""

import pytest

from repro.dns.cache import DnsCache
from repro.dns.message import ResourceRecord
from repro.dns.name import Name
from repro.dns.rcode import RCode
from repro.dns.rdata import ARdata
from repro.dns.rrtype import RRType


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def record(name="www.example.com", address="192.0.2.1", ttl=300):
    return ResourceRecord(Name(name), RRType.A, ttl, ARdata(address))


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def cache(clock):
    return DnsCache(clock=clock, max_entries=4)


class TestPositiveEntries:
    def test_hit_before_expiry(self, cache, clock):
        cache.put_positive(Name("www.example.com"), RRType.A, [record()])
        entry = cache.get(Name("www.example.com"), RRType.A)
        assert entry is not None
        assert not entry.is_negative
        assert len(entry.records) == 1

    def test_miss_after_expiry(self, cache, clock):
        cache.put_positive(Name("www.example.com"), RRType.A, [record(ttl=10)])
        clock.now = 10.0
        assert cache.get(Name("www.example.com"), RRType.A) is None

    def test_ttl_decays(self, cache, clock):
        cache.put_positive(Name("www.example.com"), RRType.A, [record(ttl=100)])
        clock.now = 40.0
        entry = cache.get(Name("www.example.com"), RRType.A)
        assert entry.records[0].ttl == 60

    def test_min_record_ttl_governs(self, cache, clock):
        cache.put_positive(Name("www.example.com"), RRType.A,
                           [record(ttl=100), record(address="192.0.2.2", ttl=10)])
        clock.now = 11.0
        assert cache.get(Name("www.example.com"), RRType.A) is None

    def test_name_case_insensitive(self, cache):
        cache.put_positive(Name("WWW.example.com"), RRType.A, [record()])
        assert cache.get(Name("www.EXAMPLE.com"), RRType.A) is not None

    def test_empty_positive_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.put_positive(Name("x.com"), RRType.A, [])

    def test_replacement(self, cache):
        cache.put_positive(Name("x.com"), RRType.A, [record("x.com", "10.0.0.1")])
        cache.put_positive(Name("x.com"), RRType.A, [record("x.com", "10.0.0.2")])
        entry = cache.get(Name("x.com"), RRType.A)
        assert str(entry.records[0].rdata.address) == "10.0.0.2"
        assert cache.size == 1


class TestNegativeEntries:
    def test_nxdomain_cached(self, cache, clock):
        cache.put_negative(Name("gone.example.com"), RRType.A,
                           RCode.NXDOMAIN, 60)
        entry = cache.get(Name("gone.example.com"), RRType.A)
        assert entry.is_negative
        assert entry.rcode is RCode.NXDOMAIN

    def test_nodata_cached(self, cache):
        cache.put_negative(Name("www.example.com"), RRType.TXT,
                           RCode.NOERROR, 60)
        entry = cache.get(Name("www.example.com"), RRType.TXT)
        assert entry.is_negative
        assert entry.rcode is RCode.NOERROR

    def test_negative_expiry(self, cache, clock):
        cache.put_negative(Name("gone.example.com"), RRType.A,
                           RCode.NXDOMAIN, 30)
        clock.now = 31.0
        assert cache.get(Name("gone.example.com"), RRType.A) is None


class TestEviction:
    def test_lru_eviction(self, cache):
        for index in range(5):
            cache.put_positive(Name(f"h{index}.example.com"), RRType.A,
                               [record(f"h{index}.example.com")])
        assert cache.size == 4
        assert cache.get(Name("h0.example.com"), RRType.A) is None
        assert cache.evictions == 1

    def test_get_refreshes_lru_position(self, cache):
        for index in range(4):
            cache.put_positive(Name(f"h{index}.example.com"), RRType.A,
                               [record(f"h{index}.example.com")])
        cache.get(Name("h0.example.com"), RRType.A)  # refresh h0
        cache.put_positive(Name("h9.example.com"), RRType.A,
                           [record("h9.example.com")])
        assert cache.get(Name("h0.example.com"), RRType.A) is not None
        assert cache.get(Name("h1.example.com"), RRType.A) is None

    def test_max_entries_validation(self, clock):
        with pytest.raises(ValueError):
            DnsCache(clock=clock, max_entries=0)


class TestHousekeeping:
    def test_flush(self, cache):
        cache.put_positive(Name("x.com"), RRType.A, [record("x.com")])
        cache.flush()
        assert cache.size == 0

    def test_purge_expired(self, cache, clock):
        cache.put_positive(Name("short.com"), RRType.A,
                           [record("short.com", ttl=5)])
        cache.put_positive(Name("long.com"), RRType.A,
                           [record("long.com", ttl=500)])
        clock.now = 10.0
        assert cache.purge_expired() == 1
        assert cache.size == 1

    def test_hit_miss_counters(self, cache):
        cache.put_positive(Name("x.com"), RRType.A, [record("x.com")])
        cache.get(Name("x.com"), RRType.A)
        cache.get(Name("y.com"), RRType.A)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_ttl_clamping(self, clock):
        clamped = DnsCache(clock=clock, max_entries=10, min_ttl=30,
                           max_ttl=60)
        clamped.put_positive(Name("tiny.com"), RRType.A,
                             [record("tiny.com", ttl=1)])
        clamped.put_positive(Name("huge.com"), RRType.A,
                             [record("huge.com", ttl=999999)])
        clock.now = 29.0
        assert clamped.get(Name("tiny.com"), RRType.A) is not None
        clock.now = 61.0
        assert clamped.get(Name("huge.com"), RRType.A) is None
