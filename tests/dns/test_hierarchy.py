"""Tests for the declarative resolution hierarchy (repro.dns.hierarchy)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.dns.hierarchy import (
    HIERARCHY_ROOT_ADDRESS,
    HierarchySpec,
    compile_hierarchy,
    compile_legacy_tree,
)
from repro.dns.resolver import RecursiveResolver, ResolveStatus
from repro.dns.rrtype import RRType
from repro.netsim.address import ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet
from repro.netsim.link import LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.scenarios.spec import PoolSpec
from repro.util.rng import RngRegistry


class HierarchyWorld:
    """A compiled hierarchy plus one caching resolver walking it."""

    def __init__(self, spec=None, pool=None, seed=7):
        self.rng = RngRegistry(seed)
        self.simulator = Simulator()
        topology = Topology.global_backbone(rng_registry=self.rng)
        topology.add_link("dns-root-edge", "us-east", LinkProfile.metro())
        topology.add_link("dns-org-edge", "eu-west", LinkProfile.metro())
        topology.add_link("ntpns-edge", "us-west", LinkProfile.metro())
        self.internet = Internet(self.simulator, topology, self.rng)
        self.deployment = compile_hierarchy(
            self.internet, self.rng, pool or PoolSpec(),
            spec or HierarchySpec())
        host = self.internet.add_host(
            Host("res", "us-west", [ip("10.99.0.50")],
                 rng=self.rng.stream("res-ports")))
        self.resolver = RecursiveResolver(
            host, self.simulator, self.deployment.root_hints,
            rng=self.rng.stream("res-txid"), instrument=True)

    def resolve(self, qname, qtype=RRType.A):
        results = []
        self.resolver.resolve(qname, qtype, results.append)
        self.simulator.run()
        assert len(results) == 1
        return results[0]


def addresses(outcome):
    return {str(record.rdata.address) for record in outcome.records}


@pytest.fixture
def world():
    return HierarchyWorld()


class TestHierarchySpec:
    def test_defaults_round_trip(self):
        spec = HierarchySpec()
        assert HierarchySpec.from_dict(spec.to_dict()) == spec

    def test_custom_round_trip(self):
        spec = HierarchySpec(tld="net", zone="pool.net", nsdomain="ns.net",
                             ns_count=3, root_ttl=100, tld_ttl=50,
                             glue=False)
        assert HierarchySpec.from_dict(spec.to_dict()) == spec

    def test_pool_name_and_levels(self):
        assert HierarchySpec().pool_name == "pool.ntp.org"
        assert HierarchySpec().levels == 2

    def test_zone_must_live_under_tld(self):
        with pytest.raises(ConfigurationError):
            HierarchySpec(tld="org", zone="ntp.net")

    def test_nsdomain_must_differ_from_zone(self):
        with pytest.raises(ConfigurationError):
            HierarchySpec(zone="ntp.org", nsdomain="ntp.org")

    def test_ns_count_bounds(self):
        with pytest.raises(ConfigurationError):
            HierarchySpec(ns_count=0)

    def test_ttls_positive(self):
        with pytest.raises(ConfigurationError):
            HierarchySpec(root_ttl=0)


class TestCompiledHierarchy:
    def test_resolves_pool_through_referral_chain(self, world):
        outcome = world.resolve("pool.ntp.org")
        assert outcome.ok
        assert len(addresses(outcome)) == 4

    def test_walks_exactly_two_referrals(self, world):
        world.resolve("pool.ntp.org")
        stats = world.resolver.stats
        # root -> TLD -> authoritative: two referrals, three upstream
        # queries, depth matching HierarchySpec.levels.
        assert stats.referrals_followed == 2
        assert stats.upstream_queries == 3

    def test_each_level_served_once(self, world):
        world.resolve("pool.ntp.org")
        servers = world.deployment.servers
        assert servers["root"].queries_served == 1
        tld_hits = sum(s.queries_served for name, s in servers.items()
                       if "-servers.net" in name)
        zone_hits = sum(s.queries_served for name, s in servers.items()
                        if name.startswith("ns"))
        assert tld_hits == 1
        assert zone_hits == 1

    def test_second_lookup_answers_from_cache(self, world):
        world.resolve("pool.ntp.org")
        queries = world.resolver.stats.upstream_queries
        second = world.resolve("pool.ntp.org")
        assert second.from_cache
        assert world.resolver.stats.upstream_queries == queries

    def test_cache_expiry_reopens_exposure_window(self, world):
        world.resolve("pool.ntp.org")
        assert world.resolver.stats.exposure_windows == 1
        world.simulator.run(until=world.simulator.now + 61)
        outcome = world.resolve("pool.ntp.org")
        assert not outcome.from_cache
        assert world.resolver.stats.exposure_windows == 2
        assert world.resolver.stats.exposure_open_s > 0.0

    def test_negative_caching(self, world):
        first = world.resolve("missing.ntp.org")
        assert first.status is ResolveStatus.NXDOMAIN
        queries = world.resolver.stats.upstream_queries
        second = world.resolve("missing.ntp.org")
        assert second.status is ResolveStatus.NXDOMAIN
        assert second.from_cache
        assert world.resolver.stats.upstream_queries == queries

    def test_glueless_delegation_still_resolves(self):
        world = HierarchyWorld(spec=HierarchySpec(glue=False))
        outcome = world.resolve("pool.ntp.org")
        assert outcome.ok
        # The glueless walk costs extra upstream queries (NS-name
        # resolution through the always-glued nsdomain delegation).
        glued = HierarchyWorld()
        glued.resolve("pool.ntp.org")
        assert (world.resolver.stats.upstream_queries
                > glued.resolver.stats.upstream_queries)

    def test_ns_redundancy_shapes_tree(self):
        world = HierarchyWorld(spec=HierarchySpec(ns_count=4))
        names = set(world.deployment.hosts)
        assert sum(1 for n in names if n.endswith("org-servers.net")) == 4
        assert sum(1 for n in names if n.startswith("ns")) == 4
        assert world.resolve("pool.ntp.org").ok

    def test_custom_tree_labels(self):
        spec = HierarchySpec(tld="net", zone="time.net",
                             nsdomain="timens.net")
        world = HierarchyWorld(spec=spec)
        assert world.resolve("pool.time.net").ok

    def test_root_hints_point_at_hierarchy_root(self, world):
        (_, address), = world.deployment.root_hints
        assert str(address) == HIERARCHY_ROOT_ADDRESS

    def test_pool_rotation_uses_directory(self, world):
        first = world.resolve("pool.ntp.org")
        world.simulator.run(until=world.simulator.now + 61)
        second = world.resolve("pool.ntp.org")
        # Both answers draw from the same directory's benign pool.
        benign = {str(a) for a in world.deployment.directory.benign}
        assert addresses(first) <= benign
        assert addresses(second) <= benign


class TestLegacyTree:
    def test_legacy_tree_has_no_spec(self):
        rng = RngRegistry(7)
        simulator = Simulator()
        topology = Topology.global_backbone(rng_registry=rng)
        topology.add_link("dns-root-edge", "us-east", LinkProfile.metro())
        topology.add_link("dns-org-edge", "eu-west", LinkProfile.metro())
        topology.add_link("ntpns-edge", "us-west", LinkProfile.metro())
        internet = Internet(simulator, topology, rng)
        tree = compile_legacy_tree(internet, rng, PoolSpec())
        assert tree.spec is None
        assert str(tree.pool_domain) == "pool.ntp.org"
        assert "root" in tree.servers and "org" in tree.servers
        (_, address), = tree.root_hints
        assert str(address) == "10.0.0.1"
