"""Tests for the periodic pool refresher."""

import pytest

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    corrupt_first_k,
)
from repro.core.refresher import PoolRefresher
from repro.scenarios import build_pool_scenario


def make_refresher(scenario, interval=120.0, max_staleness=None,
                   consumer=None, generator=None):
    received = []

    def default_consumer(pool, fresh):
        received.append((pool, fresh))

    refresher = PoolRefresher(
        generator or scenario.make_generator(timeout=2.0),
        scenario.simulator,
        scenario.pool_domain.to_text(),
        interval=interval,
        consumer=consumer or default_consumer,
        max_staleness=max_staleness)
    return refresher, received


class TestSchedule:
    def test_immediate_first_refresh(self):
        scenario = build_pool_scenario(seed=130)
        refresher, received = make_refresher(scenario)
        refresher.start()
        scenario.simulator.run(until=1.0)
        assert len(received) == 1
        assert received[0][1] is True  # fresh

    def test_periodic_refreshes(self):
        scenario = build_pool_scenario(seed=131, pool_ttl=1)
        refresher, received = make_refresher(scenario, interval=100.0)
        refresher.start()
        scenario.simulator.run(until=350.0)
        # t≈0, 100, 200, 300.
        assert len(received) == 4
        assert refresher.stats.refreshes_succeeded == 4

    def test_delayed_start(self):
        scenario = build_pool_scenario(seed=132)
        refresher, received = make_refresher(scenario, interval=60.0)
        refresher.start(immediate=False)
        scenario.simulator.run(until=30.0)
        assert received == []
        scenario.simulator.run(until=90.0)
        assert len(received) == 1

    def test_stop_halts_schedule(self):
        scenario = build_pool_scenario(seed=133)
        refresher, received = make_refresher(scenario, interval=50.0)
        refresher.start()
        scenario.simulator.run(until=10.0)
        refresher.stop()
        scenario.simulator.run(until=500.0)
        assert len(received) == 1
        assert not refresher.running

    def test_double_start_rejected(self):
        scenario = build_pool_scenario(seed=134)
        refresher, _ = make_refresher(scenario)
        refresher.start()
        with pytest.raises(RuntimeError):
            refresher.start()

    def test_interval_validation(self):
        scenario = build_pool_scenario(seed=135)
        with pytest.raises(ValueError):
            PoolRefresher(scenario.make_generator(), scenario.simulator,
                          "pool.ntp.org", interval=0,
                          consumer=lambda pool, fresh: None)

    def test_rotation_gives_fresh_pools(self):
        scenario = build_pool_scenario(seed=136, pool_ttl=1)
        refresher, received = make_refresher(scenario, interval=100.0)
        refresher.start()
        scenario.simulator.run(until=150.0)
        first = [str(a) for a in received[0][0].addresses]
        second = [str(a) for a in received[1][0].addresses]
        assert first != second


class TestStaleServing:
    def corrupt_all_empty(self, scenario):
        corrupt_first_k(scenario.providers, 1, CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.EMPTY))

    def test_serves_last_good_during_outage(self):
        scenario = build_pool_scenario(seed=137, pool_ttl=1)
        refresher, received = make_refresher(scenario, interval=100.0)
        refresher.start()
        scenario.simulator.run(until=10.0)
        assert received[0][1] is True
        # DoS begins: a provider starts answering empty.
        self.corrupt_all_empty(scenario)
        scenario.simulator.run(until=150.0)
        assert len(received) == 2
        pool, fresh = received[1]
        assert fresh is False            # stale re-serve
        assert pool.ok                    # but it is the old good pool
        assert refresher.stats.served_stale == 1
        assert refresher.staleness() > 0

    def test_staleness_bound_fails_closed(self):
        scenario = build_pool_scenario(seed=138, pool_ttl=1)
        refresher, received = make_refresher(scenario, interval=100.0,
                                             max_staleness=150.0)
        refresher.start()
        scenario.simulator.run(until=10.0)
        self.corrupt_all_empty(scenario)
        scenario.simulator.run(until=450.0)
        # t=100: stale ok (age 100 <= 150); t=200+: too stale.
        stale_served = [r for r in received[1:] if r[0].ok]
        failed = [r for r in received[1:] if not r[0].ok]
        assert len(stale_served) == 1
        assert len(failed) >= 2
        for pool, fresh in failed:
            assert fresh is False

    def test_no_good_pool_yet_fails_closed(self):
        scenario = build_pool_scenario(seed=139)
        self.corrupt_all_empty(scenario)
        refresher, received = make_refresher(scenario, interval=100.0)
        refresher.start()
        scenario.simulator.run(until=10.0)
        pool, fresh = received[0]
        assert not pool.ok
        assert fresh is False
        assert refresher.last_good_pool is None
        assert refresher.staleness() is None
