"""Integration tests: Algorithm 1 end-to-end over the Figure 1 world."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.policy import DualStackPolicy, TruncationPolicy
from repro.core.pool import PoolGeneratorConfig, SecurePoolGenerator
from repro.dns.rrtype import RRType
from repro.scenarios import build_pool_scenario


class TestGenerationHappyPath:
    def test_pool_has_n_times_k_addresses(self):
        scenario = build_pool_scenario(seed=21, num_providers=3, pool_size=20,
                                       answers_per_query=4)
        pool = scenario.generate_pool_sync()
        assert pool.ok
        assert pool.truncate_length == 4
        assert len(pool.addresses) == 3 * 4
        assert not pool.degraded
        assert pool.failed_resolvers == []

    def test_all_addresses_from_directory(self):
        scenario = build_pool_scenario(seed=22, num_providers=3)
        pool = scenario.generate_pool_sync()
        for address in pool.addresses:
            assert scenario.directory.is_benign(address)

    def test_contribution_bound_holds(self):
        scenario = build_pool_scenario(seed=23, num_providers=5, pool_size=30)
        pool = scenario.generate_pool_sync()
        assert pool.max_contribution_fraction() <= 1 / 5 + 1e-9

    def test_elapsed_time_recorded(self):
        scenario = build_pool_scenario(seed=24)
        pool = scenario.generate_pool_sync()
        assert pool.elapsed > 0

    def test_many_providers(self):
        scenario = build_pool_scenario(seed=25, num_providers=9, pool_size=50)
        pool = scenario.generate_pool_sync()
        assert pool.ok
        assert len(pool.contributions) == 9

    def test_deterministic_given_seed(self):
        first = build_pool_scenario(seed=26).generate_pool_sync()
        second = build_pool_scenario(seed=26).generate_pool_sync()
        assert [str(a) for a in first.addresses] == [
            str(a) for a in second.addresses]


class TestGenerationFailures:
    def make_partitioned_scenario(self, seed=27, num_providers=3,
                                  cut_provider_index=0, **kwargs):
        scenario = build_pool_scenario(seed=seed,
                                       num_providers=num_providers, **kwargs)
        victim = scenario.providers[cut_provider_index]
        topology = scenario.internet.topology
        # Cutting the provider region would also cut co-located ones;
        # instead blackhole just this provider with a dropping tap on
        # its access region — simplest is removing its host routes by
        # dropping datagrams addressed to it.
        from repro.netsim.internet import TapAction
        victim_address = victim.address

        def blackhole(link, datagram):
            if datagram.dst.address == victim_address:
                return TapAction.drop()
            return TapAction.passthrough()

        for link in topology.links:
            scenario.internet.add_tap(link.name, blackhole)
        return scenario, victim

    def test_strict_mode_fails_when_one_resolver_dark(self):
        scenario, victim = self.make_partitioned_scenario()
        generator = scenario.make_generator(timeout=1.0)
        pool = scenario.generate_pool_sync(generator)
        assert not pool.ok
        assert victim.name in pool.failed_resolvers

    def test_quorum_mode_degrades_gracefully(self):
        scenario, victim = self.make_partitioned_scenario(seed=28)
        config = PoolGeneratorConfig(min_answers=2)
        generator = scenario.make_generator(config=config, timeout=1.0)
        pool = scenario.generate_pool_sync(generator)
        assert pool.ok
        assert pool.degraded
        assert victim.name in pool.failed_resolvers
        assert len(pool.contributions) == 2

    def test_min_answers_validation(self):
        scenario = build_pool_scenario(seed=29)
        with pytest.raises(ConfigurationError):
            scenario.make_generator(config=PoolGeneratorConfig(min_answers=4))

    def test_qtype_validation(self):
        with pytest.raises(ConfigurationError):
            PoolGeneratorConfig(qtype=RRType.TXT)


class TestDualStack:
    def test_union_policy_pools_both_families(self):
        scenario = build_pool_scenario(seed=30, dual_stack=True,
                                       pool_size=12, answers_per_query=3)
        config = PoolGeneratorConfig(dual_stack=DualStackPolicy.UNION)
        pool = scenario.generate_pool_sync(scenario.make_generator(config=config))
        assert pool.ok
        families = {address.family for address in pool.addresses}
        assert families == {4, 6}
        # Union: per-resolver lists are A+AAAA, so K = 2 * 3.
        assert pool.truncate_length == 6

    def test_per_family_policy(self):
        scenario = build_pool_scenario(seed=31, dual_stack=True,
                                       pool_size=12, answers_per_query=3)
        config = PoolGeneratorConfig(dual_stack=DualStackPolicy.PER_FAMILY)
        pool = scenario.generate_pool_sync(scenario.make_generator(config=config))
        assert pool.ok
        v4 = [a for a in pool.addresses if a.family == 4]
        v6 = [a for a in pool.addresses if a.family == 6]
        # Each family independently combined: N*K per family.
        assert len(v4) == 3 * 3
        assert len(v6) == 3 * 3


class TestTruncationAblation:
    def test_none_policy_lets_long_answers_through(self):
        scenario = build_pool_scenario(seed=32, num_providers=3)
        config = PoolGeneratorConfig(truncation=TruncationPolicy.NONE)
        pool = scenario.generate_pool_sync(scenario.make_generator(config=config))
        assert pool.ok
        # All resolvers answer 4 here, so sizes agree with SHORTEST...
        assert len(pool.addresses) == 12
        # ...but the policy is recorded for the E5 ablation to vary.
        assert pool.truncate_length == 4
