"""Tests for per-address majority voting."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.core.majority import MajorityVoteCombiner, majority_vote
from repro.netsim.address import IPAddress


def a(octet):
    return IPAddress(f"10.0.0.{octet}")


class TestMajorityVote:
    def test_unanimous_address_wins(self):
        result = majority_vote({
            "r1": [a(1), a(2)],
            "r2": [a(1), a(3)],
            "r3": [a(1), a(4)],
        })
        assert result == [a(1)]

    def test_majority_suffices(self):
        result = majority_vote({
            "r1": [a(1)],
            "r2": [a(1)],
            "r3": [a(9)],
        })
        assert result == [a(1)]

    def test_minority_excluded(self):
        result = majority_vote({
            "r1": [a(1), a(6)],
            "r2": [a(1)],
            "r3": [a(1)],
        })
        assert a(6) not in result

    def test_repeats_within_one_resolver_count_once(self):
        """One resolver repeating an address is one vote, not many."""
        result = majority_vote({
            "r1": [a(6), a(6), a(6)],
            "r2": [a(1)],
            "r3": [a(1)],
        })
        assert result == [a(1)]

    def test_silent_resolver_votes_against(self):
        result = majority_vote({
            "r1": [a(1)],
            "r2": [a(1)],
            "r3": [],
            "r4": [],
            "r5": [],
        })
        assert result == []

    def test_custom_quorum(self):
        lists = {"r1": [a(1)], "r2": [a(2)], "r3": [a(1)]}
        assert majority_vote(lists, quorum=1) == [a(1), a(2)]
        assert majority_vote(lists, quorum=3) == []

    def test_quorum_validation(self):
        with pytest.raises(ConfigurationError):
            majority_vote({"r1": [a(1)]}, quorum=2)
        with pytest.raises(ConfigurationError):
            majority_vote({"r1": [a(1)]}, quorum=0)

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            majority_vote({})

    def test_deterministic_ordering(self):
        result = majority_vote({
            "r1": [a(5), a(3), a(1)],
            "r2": [a(3), a(1), a(5)],
        })
        assert result == sorted(result, key=lambda addr: str(addr))


class TestMajorityVoteCombiner:
    def test_default_majority_rule(self):
        combiner = MajorityVoteCombiner()
        assert combiner.quorum_for(3) == 2
        assert combiner.quorum_for(4) == 3
        assert combiner.quorum_for(5) == 3

    def test_supermajority_rule(self):
        combiner = MajorityVoteCombiner(quorum_fraction=2 / 3)
        assert combiner.quorum_for(3) == 3
        assert combiner.quorum_for(6) == 5

    def test_combine(self):
        combiner = MajorityVoteCombiner()
        result = combiner.combine({
            "r1": [a(1)],
            "r2": [a(1)],
            "r3": [a(2)],
        })
        assert result == [a(1)]

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            MajorityVoteCombiner(quorum_fraction=1.0)
        with pytest.raises(ConfigurationError):
            MajorityVoteCombiner(quorum_fraction=0.0)


class TestMajorityProperties:
    address_st = st.integers(min_value=0, max_value=30).map(a)
    lists_st = st.dictionaries(
        keys=st.sampled_from(["r1", "r2", "r3", "r4", "r5"]),
        values=st.lists(address_st, max_size=6),
        min_size=1, max_size=5)

    @given(lists_st)
    def test_soundness_every_winner_has_quorum(self, answer_lists):
        n = len(answer_lists)
        quorum = n // 2 + 1
        winners = majority_vote(answer_lists)
        for address in winners:
            votes = sum(1 for lst in answer_lists.values() if address in lst)
            assert votes >= quorum

    @given(lists_st)
    def test_completeness_every_quorum_address_wins(self, answer_lists):
        n = len(answer_lists)
        quorum = n // 2 + 1
        winners = set(majority_vote(answer_lists))
        every_address = {addr for lst in answer_lists.values() for addr in lst}
        for address in every_address:
            votes = sum(1 for lst in answer_lists.values() if address in lst)
            if votes >= quorum:
                assert address in winners

    @given(lists_st)
    def test_no_duplicates_in_output(self, answer_lists):
        winners = majority_vote(answer_lists)
        assert len(winners) == len(set(winners))
