"""Unit + property tests for Algorithm 1's pure combination step."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.core.policy import TruncationPolicy
from repro.core.pool import combine_answer_lists
from repro.netsim.address import IPAddress


def addresses(*octets):
    return [IPAddress(f"10.0.0.{o}") for o in octets]


class TestCombineBasics:
    def test_equal_lengths(self):
        pool, k, parts = combine_answer_lists({
            "r1": addresses(1, 2),
            "r2": addresses(3, 4),
            "r3": addresses(5, 6),
        })
        assert k == 2
        assert len(pool) == 6
        assert parts["r1"] == addresses(1, 2)

    def test_truncates_to_shortest(self):
        pool, k, parts = combine_answer_lists({
            "r1": addresses(1, 2, 3, 4),
            "r2": addresses(5),
            "r3": addresses(6, 7, 8),
        })
        assert k == 1
        assert len(pool) == 3
        assert parts["r1"] == addresses(1)
        assert parts["r2"] == addresses(5)
        assert parts["r3"] == addresses(6)

    def test_empty_list_truncates_all_to_zero(self):
        """§II fn.2: an empty poisoned answer is a DoS — pool collapses."""
        pool, k, parts = combine_answer_lists({
            "r1": addresses(1, 2),
            "r2": [],
        })
        assert k == 0
        assert pool == []

    def test_duplicates_preserved_as_multiset(self):
        """§IV: repeated addresses are individual servers."""
        pool, k, _ = combine_answer_lists({
            "r1": addresses(1, 1),
            "r2": addresses(1, 2),
        })
        assert len(pool) == 4
        assert pool.count(IPAddress("10.0.0.1")) == 3

    def test_resolver_order_preserved(self):
        pool, _, _ = combine_answer_lists({
            "first": addresses(1),
            "second": addresses(2),
        })
        assert pool == addresses(1, 2)

    def test_empty_input_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_answer_lists({})

    def test_single_resolver_degenerates_to_plain_lookup(self):
        pool, k, _ = combine_answer_lists({"only": addresses(1, 2, 3)})
        assert pool == addresses(1, 2, 3)
        assert k == 3


class TestTruncationPolicies:
    def test_none_policy_keeps_everything(self):
        pool, k, _ = combine_answer_lists({
            "r1": addresses(1, 2, 3, 4, 5),
            "r2": addresses(6),
        }, TruncationPolicy.NONE)
        assert len(pool) == 6
        assert k == 5

    def test_median_policy(self):
        pool, k, _ = combine_answer_lists({
            "r1": addresses(1),
            "r2": addresses(2, 3),
            "r3": addresses(4, 5, 6),
        }, TruncationPolicy.MEDIAN)
        assert k == 2
        assert len(pool) == 5  # 1 + 2 + 2

    def test_truncate_length_validation(self):
        with pytest.raises(ValueError):
            TruncationPolicy.SHORTEST.truncate_length([])

    def test_policy_apply(self):
        cut = TruncationPolicy.SHORTEST.apply({
            "a": [1, 2, 3], "b": [4]})
        assert cut == {"a": [1], "b": [4]}


# Hypothesis strategies for answer-list maps.
address_st = st.integers(min_value=0, max_value=255).map(
    lambda o: IPAddress(f"192.168.0.{o}"))
lists_st = st.dictionaries(
    keys=st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    values=st.lists(address_st, max_size=10),
    min_size=1, max_size=8)


class TestCombineProperties:
    @given(lists_st)
    def test_pool_size_is_n_times_k(self, answer_lists):
        pool, k, parts = combine_answer_lists(answer_lists)
        assert len(pool) == len(answer_lists) * k
        assert k == min(len(v) for v in answer_lists.values())

    @given(lists_st)
    def test_every_resolver_contributes_exactly_k(self, answer_lists):
        """The security core: no resolver exceeds a 1/N share."""
        pool, k, parts = combine_answer_lists(answer_lists)
        for name, part in parts.items():
            assert len(part) == k
            assert part == list(answer_lists[name][:k])

    @given(lists_st)
    def test_contribution_bound(self, answer_lists):
        pool, k, parts = combine_answer_lists(answer_lists)
        if pool:
            largest = max(len(part) for part in parts.values())
            assert largest / len(pool) <= 1.0 / len(answer_lists) + 1e-9

    @given(lists_st)
    def test_pool_only_contains_offered_addresses(self, answer_lists):
        pool, _, _ = combine_answer_lists(answer_lists)
        offered = {a for v in answer_lists.values() for a in v}
        assert all(address in offered for address in pool)

    @given(lists_st)
    def test_median_bounded_by_extremes(self, answer_lists):
        lengths = [len(v) for v in answer_lists.values()]
        median_k = TruncationPolicy.MEDIAN.truncate_length(lengths)
        assert min(lengths) <= median_k <= max(lengths)


class TestCombineWithQuorum:
    """The shared availability gate (strict vs quorum, E6 / fleet)."""

    def test_strict_requires_every_answer(self):
        from repro.core.pool import combine_with_quorum
        answers = {"r1": addresses(1, 2), "r2": addresses(3, 4), "r3": None}
        assert combine_with_quorum(answers) is None

    def test_strict_empty_answer_is_the_dos(self):
        from repro.core.pool import combine_with_quorum
        answers = {"r1": addresses(1, 2), "r2": [], "r3": addresses(3, 4)}
        assert combine_with_quorum(answers) is None

    def test_quorum_discards_empty_and_failed(self):
        from repro.core.pool import combine_with_quorum
        answers = {"r1": addresses(1, 2), "r2": [], "r3": None}
        pool = combine_with_quorum(answers, min_answers=1)
        assert pool == addresses(1, 2)
        assert combine_with_quorum(answers, min_answers=2) is None

    def test_all_answered_matches_plain_combine(self):
        from repro.core.pool import combine_with_quorum
        answers = {"r1": addresses(1, 2, 3), "r2": addresses(4, 5),
                   "r3": addresses(6, 7)}
        pool, _, _ = combine_answer_lists(answers)
        assert combine_with_quorum(answers) == pool
