"""Tests for the trusted resolver set and its §III bounds."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.resolverset import ResolverRef, ResolverSet
from repro.netsim.address import Endpoint, ip


def refs(count):
    return [ResolverRef(name=f"doh{i}.example",
                        endpoint=Endpoint(ip(f"10.53.0.{i + 1}"), 443))
            for i in range(count)]


class TestResolverSet:
    def test_basic_construction(self):
        rs = ResolverSet(refs(3))
        assert len(rs) == 3
        assert rs.assumed_secure_fraction == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ResolverSet([])

    def test_duplicate_names_rejected(self):
        duplicated = refs(2) + [refs(1)[0]]
        with pytest.raises(ConfigurationError):
            ResolverSet(duplicated)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            ResolverSet(refs(3), assumed_secure_fraction=0.0)
        with pytest.raises(ValueError):
            ResolverSet(refs(3), assumed_secure_fraction=1.5)

    def test_iteration_and_indexing(self):
        rs = ResolverSet(refs(3))
        assert [r.name for r in rs] == [f"doh{i}.example" for i in range(3)]
        assert rs[0].name == "doh0.example"


class TestSecurityBounds:
    def test_max_tolerable_corrupted_half(self):
        assert ResolverSet(refs(4), 0.5).max_tolerable_corrupted == 2
        assert ResolverSet(refs(5), 0.5).max_tolerable_corrupted == 2

    def test_max_tolerable_corrupted_two_thirds(self):
        assert ResolverSet(refs(3), 2 / 3).max_tolerable_corrupted == 1

    def test_attacker_must_corrupt_matches_paper(self):
        """§III-a: controlling fraction y of the pool needs ⌈yN⌉
        resolvers — 'x ≥ y'."""
        rs = ResolverSet(refs(3))
        # Majority of the pool with 3 resolvers: needs 2 of them.
        assert rs.attacker_must_corrupt(1 / 2) == 2
        # Two-thirds: needs 2.
        assert rs.attacker_must_corrupt(2 / 3) == 2

    def test_attacker_must_corrupt_scales_with_n(self):
        for n in (3, 5, 9, 15):
            rs = ResolverSet(refs(n))
            needed = rs.attacker_must_corrupt(0.5)
            import math
            assert needed == math.ceil(0.5 * n - 1e-9)

    def test_attacker_must_corrupt_full_pool(self):
        assert ResolverSet(refs(7)).attacker_must_corrupt(1.0) == 7
