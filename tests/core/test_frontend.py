"""Tests for the backward-compatible plain-DNS front-end."""

import pytest

from repro.core.frontend import MajorityDnsFrontend
from repro.core.majority import MajorityVoteCombiner
from repro.dns.client import StubResolver
from repro.dns.rcode import RCode
from repro.dns.rrtype import RRType
from repro.scenarios import build_pool_scenario


@pytest.fixture
def frontend_world():
    scenario = build_pool_scenario(seed=41, num_providers=3, pool_size=20)
    generator = scenario.make_generator()
    frontend = MajorityDnsFrontend(
        scenario.client, generator, scenario.make_doh_client("frontend"),
        pool_domains=[scenario.pool_domain])
    # A second simulated machine uses the frontend like a normal
    # resolver over plain DNS.
    from repro.netsim.address import ip
    from repro.netsim.host import Host
    app_host = scenario.internet.add_host(
        Host("legacy-app", "client-edge", [ip("10.99.0.2")]))
    stub = StubResolver(app_host, scenario.simulator,
                        scenario.client.primary_address, timeout=10.0)
    return scenario, frontend, stub


def stub_query_sync(scenario, stub, qname, qtype=RRType.A):
    outcomes = []
    stub.query(qname, qtype, outcomes.append)
    scenario.simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestPoolDomainPath:
    def test_legacy_stub_gets_combined_pool(self, frontend_world):
        scenario, frontend, stub = frontend_world
        outcome = stub_query_sync(scenario, stub, "pool.ntp.org")
        assert outcome.ok
        # N=3 resolvers x K=4 answers each.
        assert len(outcome.addresses) == 12
        assert frontend.pool_queries == 1
        for address in outcome.addresses:
            assert scenario.directory.is_benign(address)

    def test_multiset_preserved_over_plain_dns(self, frontend_world):
        """Duplicate addresses survive the standard DNS encoding (§IV)."""
        scenario, frontend, stub = frontend_world
        outcome = stub_query_sync(scenario, stub, "pool.ntp.org")
        # With a 20-server pool and 12 slots, duplicates are likely but
        # not guaranteed for every seed; the invariant that matters is
        # that the answer length equals N*K even when addresses repeat.
        assert len(outcome.addresses) == 12

    def test_majority_filter_mode(self):
        scenario = build_pool_scenario(seed=42, num_providers=3, pool_size=4,
                                       answers_per_query=4)
        # Tiny pool + full-size answers => every resolver sees the same 4
        # servers, so majority voting keeps them.
        generator = scenario.make_generator()
        frontend = MajorityDnsFrontend(
            scenario.client, generator, scenario.make_doh_client("fe"),
            pool_domains=[scenario.pool_domain],
            majority=MajorityVoteCombiner())
        from repro.netsim.address import ip
        from repro.netsim.host import Host
        app_host = scenario.internet.add_host(
            Host("legacy-app", "client-edge", [ip("10.99.0.2")]))
        stub = StubResolver(app_host, scenario.simulator,
                            scenario.client.primary_address, timeout=10.0)
        outcome = stub_query_sync(scenario, stub, "pool.ntp.org")
        assert outcome.ok
        assert 1 <= len(outcome.addresses) <= 4
        assert len(set(outcome.addresses)) == len(outcome.addresses)


class TestProxyPath:
    def test_non_pool_query_proxied(self, frontend_world):
        scenario, frontend, stub = frontend_world
        outcome = stub_query_sync(scenario, stub, "c.ntpns.org")
        assert outcome.ok
        assert frontend.proxied_queries == 1
        assert [str(a) for a in outcome.addresses] == ["10.0.0.11"]

    def test_nxdomain_proxied(self, frontend_world):
        scenario, frontend, stub = frontend_world
        outcome = stub_query_sync(scenario, stub, "missing.ntp.org")
        assert outcome.response.rcode is RCode.NXDOMAIN

    def test_pool_domain_txt_is_proxied_not_pooled(self, frontend_world):
        scenario, frontend, stub = frontend_world
        outcome = stub_query_sync(scenario, stub, "pool.ntp.org", RRType.TXT)
        assert frontend.pool_queries == 0
        assert frontend.proxied_queries == 1
