"""Tests for the minimal HTTP codec."""

import pytest
from hypothesis import given, strategies as st

from repro.doh.http import HttpError, HttpRequest, HttpResponse


class TestRequest:
    def test_roundtrip_get(self):
        request = HttpRequest(method="GET", target="/dns-query?dns=AAAA",
                              headers={"Accept": "application/dns-message"})
        decoded = HttpRequest.decode(request.encode())
        assert decoded.method == "GET"
        assert decoded.target == "/dns-query?dns=AAAA"
        assert decoded.header("accept") == "application/dns-message"
        assert decoded.body == b""

    def test_roundtrip_post_with_body(self):
        request = HttpRequest(method="POST", target="/dns-query",
                              headers={"Content-Type": "application/dns-message"},
                              body=b"\x00\x01binary\xff")
        decoded = HttpRequest.decode(request.encode())
        assert decoded.body == b"\x00\x01binary\xff"

    def test_path_and_query_params(self):
        request = HttpRequest(method="GET", target="/dns-query?dns=abc&x=1")
        assert request.path == "/dns-query"
        assert request.query_params == {"dns": "abc", "x": "1"}

    def test_no_query_string(self):
        request = HttpRequest(method="GET", target="/dns-query")
        assert request.query_params == {}

    def test_header_lookup_case_insensitive(self):
        request = HttpRequest(method="GET", target="/",
                              headers={"X-Thing": "v"})
        assert request.header("x-thing") == "v"
        assert request.header("missing", "dflt") == "dflt"

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            HttpRequest.decode(b"GARBAGE\r\n\r\n")

    def test_missing_terminator(self):
        with pytest.raises(HttpError):
            HttpRequest.decode(b"GET / HTTP/1.1\r\nHost: x\r\n")

    def test_body_shorter_than_content_length(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(HttpError):
            HttpRequest.decode(raw)

    def test_bad_content_length(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n"
        with pytest.raises(HttpError):
            HttpRequest.decode(raw)

    def test_method_uppercased(self):
        raw = b"get / HTTP/1.1\r\n\r\n"
        assert HttpRequest.decode(raw).method == "GET"


class TestResponse:
    def test_roundtrip(self):
        response = HttpResponse(status=200,
                                headers={"Content-Type": "application/dns-message"},
                                body=b"\x00\x10")
        decoded = HttpResponse.decode(response.encode())
        assert decoded.status == 200
        assert decoded.ok
        assert decoded.body == b"\x00\x10"

    def test_error_statuses(self):
        for status in (400, 404, 415, 500):
            decoded = HttpResponse.decode(HttpResponse(status=status).encode())
            assert decoded.status == status
            assert not decoded.ok

    def test_unknown_status_reason(self):
        encoded = HttpResponse(status=299).encode()
        assert b"299" in encoded

    def test_malformed_status_line(self):
        with pytest.raises(HttpError):
            HttpResponse.decode(b"NOPE\r\n\r\n")

    def test_non_numeric_status(self):
        with pytest.raises(HttpError):
            HttpResponse.decode(b"HTTP/1.1 abc OK\r\n\r\n")

    @given(st.binary(max_size=300))
    def test_binary_body_roundtrip(self, body):
        decoded = HttpResponse.decode(HttpResponse(status=200, body=body).encode())
        assert decoded.body == body
