"""Tests for provider profiles and deployment."""

import pytest

from repro.doh.providers import (
    CLOUDFLARE,
    FIGURE1_PROVIDERS,
    GOOGLE,
    QUAD9,
    deploy_provider,
)
from repro.doh.tls import CertificateAuthority
from repro.scenarios import build_pool_scenario


class TestFigure1Profiles:
    def test_the_three_named_providers(self):
        assert GOOGLE.name == "dns.google"
        assert CLOUDFLARE.name == "cloudflare-dns.com"
        assert QUAD9.name == "dns.quad9.net"
        assert len(FIGURE1_PROVIDERS) == 3

    def test_distinct_regions(self):
        regions = {p.region for p in FIGURE1_PROVIDERS}
        assert len(regions) == 3

    def test_str(self):
        assert str(GOOGLE) == "dns.google@us-west"


class TestDeployment:
    def test_deployment_wiring(self):
        scenario = build_pool_scenario(seed=160)
        deployment = scenario.providers[0]
        assert deployment.name == "dns.google"
        assert deployment.endpoint.port == 443
        assert deployment.host.owns_address(deployment.address)
        # Resolver and DoH server share the host.
        assert deployment.resolver.host is deployment.host
        assert deployment.doh_server.resolver is deployment.resolver

    def test_certificate_binds_name_and_key(self):
        scenario = build_pool_scenario(seed=161)
        deployment = scenario.providers[1]
        assert deployment.certificate.subject == deployment.name
        assert deployment.certificate.public_key == deployment.keypair.public
        assert scenario.trust_store.verify(deployment.certificate,
                                           deployment.name)

    def test_certificates_differ_between_providers(self):
        scenario = build_pool_scenario(seed=162)
        fingerprints = {p.certificate.fingerprint for p in scenario.providers}
        assert len(fingerprints) == 3

    def test_cannot_deploy_same_profile_twice(self):
        scenario = build_pool_scenario(seed=163)
        ca = CertificateAuthority("x", scenario.rng.stream("x"))
        with pytest.raises(ValueError):
            deploy_provider(scenario.internet, GOOGLE.__class__(
                name="dns.google", region="us-west", address="10.53.0.1"),
                ca, scenario.root_hints, scenario.rng)

    def test_provider_serves_plain_dns_too(self):
        """Each provider also answers classic UDP :53 (used as the
        plain-DNS baseline in E7/E10)."""
        from repro.dns.client import StubResolver
        from repro.dns.rrtype import RRType
        scenario = build_pool_scenario(seed=164)
        stub = StubResolver(scenario.client, scenario.simulator,
                            scenario.providers[0].address, timeout=5.0)
        outcomes = []
        stub.query(scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].ok
        assert len(outcomes[0].addresses) == 4
