"""Tests for the simulated TLS layer: handshake, auth, record security."""

import random

import pytest

from repro.doh.tls import (
    Certificate,
    CertificateAuthority,
    KeyPair,
    TlsClientConnection,
    TlsError,
    TlsServer,
    TrustStore,
    _open,
    _seal,
)
from repro.netsim.address import Endpoint, ip
from repro.netsim.host import Host
from repro.netsim.internet import Internet, TapAction
from repro.netsim.link import LinkProfile
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology
from repro.util.rng import RngRegistry


def make_rng(seed=0):
    return random.Random(seed)


class TestKeyPair:
    def test_shared_secret_agreement(self):
        a = KeyPair.generate(make_rng(1))
        b = KeyPair.generate(make_rng(2))
        assert a.shared_secret(b.public) == b.shared_secret(a.public)

    def test_different_peers_different_secrets(self):
        a = KeyPair.generate(make_rng(1))
        b = KeyPair.generate(make_rng(2))
        c = KeyPair.generate(make_rng(3))
        assert a.shared_secret(b.public) != a.shared_secret(c.public)

    def test_out_of_range_public_rejected(self):
        a = KeyPair.generate(make_rng(1))
        with pytest.raises(TlsError):
            a.shared_secret(1)

    def test_comb_exponentiation_matches_pow(self):
        """The fixed-base comb table is a pure speedup: its result must
        be bit-identical to pow() on arbitrary exponents, including the
        window-boundary edge cases."""
        from repro.doh.tls import (
            DH_GENERATOR, DH_PRIME, _COMB_WINDOW, _generator_pow)
        rng = make_rng(99)
        exponents = [0, 1, 2, (1 << _COMB_WINDOW) - 1, 1 << _COMB_WINDOW,
                     DH_PRIME - 2, DH_PRIME.bit_length()]
        exponents += [rng.randrange(2, DH_PRIME - 2) for _ in range(5)]
        for exponent in exponents:
            assert _generator_pow(exponent) == pow(
                DH_GENERATOR, exponent, DH_PRIME)

    def test_generate_public_matches_direct_pow(self):
        pair = KeyPair.generate(make_rng(7))
        from repro.doh.tls import DH_GENERATOR, DH_PRIME
        assert pair.public == pow(DH_GENERATOR, pair.secret, DH_PRIME)


class TestCertificates:
    def test_issue_and_verify(self):
        ca = CertificateAuthority("Test CA", make_rng(1))
        key = KeyPair.generate(make_rng(2))
        cert = ca.issue("dns.example", key.public)
        store = TrustStore([ca])
        assert store.verify(cert, "dns.example")

    def test_wrong_subject_rejected(self):
        ca = CertificateAuthority("Test CA", make_rng(1))
        key = KeyPair.generate(make_rng(2))
        cert = ca.issue("dns.example", key.public)
        assert not TrustStore([ca]).verify(cert, "other.example")

    def test_untrusted_issuer_rejected(self):
        good_ca = CertificateAuthority("Good CA", make_rng(1))
        evil_ca = CertificateAuthority("Evil CA", make_rng(9))
        key = KeyPair.generate(make_rng(2))
        cert = evil_ca.issue("dns.example", key.public)
        assert not TrustStore([good_ca]).verify(cert, "dns.example")

    def test_forged_certificate_rejected(self):
        """A hand-built certificate claiming a trusted issuer fails."""
        ca = CertificateAuthority("Test CA", make_rng(1))
        attacker_key = KeyPair.generate(make_rng(66))
        forged = Certificate(subject="dns.example", issuer="Test CA",
                             public_key=attacker_key.public, serial=77,
                             signature=b"\x00" * 32)
        assert not TrustStore([ca]).verify(forged, "dns.example")

    def test_revocation(self):
        ca = CertificateAuthority("Test CA", make_rng(1))
        key = KeyPair.generate(make_rng(2))
        cert = ca.issue("dns.example", key.public)
        store = TrustStore([ca])
        ca.revoke(cert)
        assert not store.verify(cert, "dns.example")

    def test_certificate_wire_roundtrip(self):
        ca = CertificateAuthority("Test CA", make_rng(1))
        key = KeyPair.generate(make_rng(2))
        cert = ca.issue("dns.example", key.public)
        decoded, consumed = Certificate.decode(cert.encode() + b"extra")
        assert decoded == cert
        assert consumed == len(cert.encode())

    def test_truncated_certificate_raises(self):
        with pytest.raises(TlsError):
            Certificate.decode(b"\x00\x05ab")


class TestRecordProtection:
    def test_seal_open_roundtrip(self):
        key = b"k" * 32
        sealed = _seal(key, b"c2s", 7, 0, b"payload")
        assert _open(key, b"c2s", 7, 0, sealed) == b"payload"

    def test_wrong_key_fails(self):
        sealed = _seal(b"k" * 32, b"c2s", 7, 0, b"payload")
        assert _open(b"x" * 32, b"c2s", 7, 0, sealed) is None

    def test_wrong_seq_fails_replay(self):
        key = b"k" * 32
        sealed = _seal(key, b"c2s", 7, 0, b"payload")
        assert _open(key, b"c2s", 7, 1, sealed) is None

    def test_wrong_direction_fails_reflection(self):
        key = b"k" * 32
        sealed = _seal(key, b"c2s", 7, 0, b"payload")
        assert _open(key, b"s2c", 7, 0, sealed) is None

    def test_tampered_ciphertext_fails(self):
        key = b"k" * 32
        sealed = bytearray(_seal(key, b"c2s", 7, 0, b"payload"))
        sealed[0] ^= 0xFF
        assert _open(key, b"c2s", 7, 0, bytes(sealed)) is None

    def test_short_record_fails(self):
        assert _open(b"k" * 32, b"c2s", 7, 0, b"short") is None

    def test_ciphertext_differs_from_plaintext(self):
        sealed = _seal(b"k" * 32, b"c2s", 7, 0, b"payload")
        assert b"payload" not in sealed


def build_tls_world():
    """Client and server hosts joined by one link, with a CA."""
    registry = RngRegistry(5)
    simulator = Simulator()
    topology = Topology(registry)
    topology.add_link("left", "right", LinkProfile(latency=0.01))
    internet = Internet(simulator, topology, registry)
    client_host = internet.add_host(Host("client", "left", [ip("10.0.0.1")]))
    server_host = internet.add_host(Host("server", "right", [ip("10.0.0.2")]))
    ca = CertificateAuthority("Test CA", registry.stream("ca"))
    server_key = KeyPair.generate(registry.stream("server-key"))
    cert = ca.issue("dns.example", server_key.public)
    return (simulator, internet, client_host, server_host, ca, cert,
            server_key, registry)


class TestHandshakeAndData:
    def test_echo_roundtrip(self):
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        server = TlsServer(server_host, 443, cert, key)
        server.on_data(lambda sid, data, reply: reply(b"echo:" + data))

        received = []
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([ca]),
                                   reg.stream("client"))
        conn.on_established(lambda: conn.send(b"hello"))
        conn.on_data(received.append)
        conn.connect()
        sim.run()
        assert received == [b"echo:hello"]
        assert server.handshakes_completed == 1

    def test_multiple_records_in_order(self):
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        server = TlsServer(server_host, 443, cert, key)
        server.on_data(lambda sid, data, reply: reply(data.upper()))
        received = []
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([ca]),
                                   reg.stream("client"))

        def send_all():
            conn.send(b"one")
            conn.send(b"two")
            conn.send(b"three")

        conn.on_established(send_all)
        conn.on_data(received.append)
        conn.connect()
        sim.run()
        assert received == [b"ONE", b"TWO", b"THREE"]

    def test_wrong_name_certificate_fails_handshake(self):
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        TlsServer(server_host, 443, cert, key)
        failures = []
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.other", TrustStore([ca]),
                                   reg.stream("client"))
        conn.on_failure(failures.append)
        conn.connect()
        sim.run()
        assert len(failures) == 1
        assert "verification failed" in failures[0]
        assert not conn.established

    def test_untrusted_ca_fails_handshake(self):
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        TlsServer(server_host, 443, cert, key)
        other_ca = CertificateAuthority("Other CA", reg.stream("other-ca"))
        failures = []
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([other_ca]),
                                   reg.stream("client"))
        conn.on_failure(failures.append)
        conn.connect()
        sim.run()
        assert len(failures) == 1

    def test_mismatched_cert_keypair_rejected_at_server(self):
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        wrong_key = KeyPair.generate(reg.stream("wrong"))
        with pytest.raises(TlsError):
            TlsServer(server_host, 443, cert, wrong_key)

    def test_onpath_tamper_is_dropped_not_decrypted(self):
        """An attacker flipping ciphertext bits cannot alter plaintext —
        the record just fails its MAC and is dropped."""
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        server = TlsServer(server_host, 443, cert, key)
        server.on_data(lambda sid, data, reply: reply(b"echo:" + data))

        def corrupt_data_records(link, datagram):
            if datagram.payload and datagram.payload[0] == 3:  # data record
                mangled = bytearray(datagram.payload)
                mangled[-1] ^= 0xFF
                return TapAction.rewrite(bytes(mangled))
            return TapAction.passthrough()

        net.add_tap("left--right", corrupt_data_records)
        received = []
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([ca]),
                                   reg.stream("client"))
        conn.on_established(lambda: conn.send(b"hello"))
        conn.on_data(received.append)
        conn.connect()
        sim.run()
        assert received == []
        assert server.records_rejected >= 1

    def test_onpath_observer_sees_no_plaintext(self):
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        server = TlsServer(server_host, 443, cert, key)
        server.on_data(lambda sid, data, reply: reply(b"SECRET-RESPONSE"))
        observed = []

        def observe(link, datagram):
            observed.append(datagram.payload)
            return TapAction.passthrough()

        net.add_tap("left--right", observe)
        received = []
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([ca]),
                                   reg.stream("client"))
        conn.on_established(lambda: conn.send(b"SECRET-REQUEST"))
        conn.on_data(received.append)
        conn.connect()
        sim.run()
        assert received == [b"SECRET-RESPONSE"]
        joined = b"".join(observed)
        assert b"SECRET-REQUEST" not in joined
        assert b"SECRET-RESPONSE" not in joined

    def test_mitm_with_own_key_and_genuine_cert_fails_confirmation(self):
        """An on-path attacker replaying the genuine certificate cannot
        complete the handshake without the server's private key."""
        import struct as structlib
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        TlsServer(server_host, 443, cert, key)
        failures = []

        def impersonate(link, datagram):
            # Replace ServerHello's key confirmation with garbage, as an
            # attacker who does not know the session key would have to.
            if datagram.payload and datagram.payload[0] == 2:
                mangled = datagram.payload[:-32] + b"\x00" * 32
                return TapAction.rewrite(mangled)
            return TapAction.passthrough()

        net.add_tap("left--right", impersonate)
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([ca]),
                                   reg.stream("client"))
        conn.on_failure(failures.append)
        conn.connect()
        sim.run()
        assert failures == ["server failed key confirmation"]

    def test_send_before_established_raises(self):
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([ca]),
                                   reg.stream("client"))
        with pytest.raises(TlsError):
            conn.send(b"too early")

    def test_offpath_injection_rejected(self):
        """Off-path forged data records fail the MAC and are counted."""
        from repro.netsim.packet import Datagram
        import struct as structlib
        sim, net, client_host, server_host, ca, cert, key, reg = build_tls_world()
        server = TlsServer(server_host, 443, cert, key)
        server.on_data(lambda sid, data, reply: None)
        conn = TlsClientConnection(client_host, Endpoint(ip("10.0.0.2"), 443),
                                   "dns.example", TrustStore([ca]),
                                   reg.stream("client"))
        conn.connect()
        sim.run()
        assert conn.established
        # Attacker forges a data record to the server for this session.
        forged_record = (structlib.pack("!BQ", 3, conn.session_id)
                         + b"\x00" * 64)
        forged = Datagram(
            src=Endpoint(ip("10.0.0.1"), 50000),
            dst=Endpoint(ip("10.0.0.2"), 443),
            payload=forged_record)
        net.inject(forged, at_node="left")
        sim.run()
        assert server.records_rejected >= 1
