"""Tests for base64url encoding (RFC 8484 §4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.doh.encoding import EncodingError, b64url_decode, b64url_encode


class TestEncode:
    def test_no_padding_characters(self):
        # 4 bytes would normally produce "==" padding.
        assert "=" not in b64url_encode(b"\x00\x01\x02\x03")

    def test_url_safe_alphabet(self):
        encoded = b64url_encode(bytes(range(256)))
        assert "+" not in encoded
        assert "/" not in encoded

    def test_rfc8484_example(self):
        # RFC 8484 §4.1.1 example query for www.example.com.
        wire = bytes.fromhex(
            "00000100000100000000000003777777076578616d706c6503636f6d00000"
            "10001")
        assert b64url_encode(wire) == (
            "AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB")


class TestDecode:
    def test_roundtrip(self):
        data = b"hello doh"
        assert b64url_decode(b64url_encode(data)) == data

    def test_empty(self):
        assert b64url_decode("") == b""

    def test_invalid_length_rejected(self):
        with pytest.raises(EncodingError):
            b64url_decode("abcde")

    def test_invalid_characters_rejected(self):
        with pytest.raises(EncodingError):
            b64url_decode("ab!d")

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        assert b64url_decode(b64url_encode(data)) == data
