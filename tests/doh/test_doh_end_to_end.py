"""End-to-end DoH tests over the assembled Figure 1 scenario."""

import pytest

from repro.dns.rcode import RCode
from repro.dns.rrtype import RRType
from repro.doh.client import DoHClient, DoHStatus
from repro.doh.tls import CertificateAuthority, TrustStore
from repro.scenarios import build_pool_scenario

QUERY_DOMAIN = "pool.ntp.org"


@pytest.fixture(scope="module")
def scenario():
    return build_pool_scenario(seed=3, num_providers=3, pool_size=20)


def run_query(scenario, client: DoHClient, provider, qname=QUERY_DOMAIN,
              qtype=RRType.A):
    outcomes = []
    client.query(provider.endpoint, provider.name, qname, qtype,
                 outcomes.append)
    scenario.simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestDoHQueries:
    def test_get_query_resolves_pool(self, scenario):
        client = DoHClient(scenario.client, scenario.simulator,
                           scenario.trust_store,
                           rng=scenario.rng.stream("t1"), method="GET")
        outcome = run_query(scenario, client, scenario.providers[0])
        assert outcome.ok
        assert outcome.message.rcode is RCode.NOERROR
        addresses = [str(r.rdata.address) for r in outcome.message.answers]
        assert len(addresses) == scenario.directory.answers_per_query
        for address in addresses:
            assert scenario.directory.is_benign(address)

    def test_post_query_resolves_pool(self, scenario):
        client = DoHClient(scenario.client, scenario.simulator,
                           scenario.trust_store,
                           rng=scenario.rng.stream("t2"), method="POST")
        outcome = run_query(scenario, client, scenario.providers[1])
        assert outcome.ok

    def test_all_three_figure1_providers_answer(self, scenario):
        client = DoHClient(scenario.client, scenario.simulator,
                           scenario.trust_store,
                           rng=scenario.rng.stream("t3"))
        names = set()
        for provider in scenario.providers:
            outcome = run_query(scenario, client, provider)
            assert outcome.ok, provider.name
            names.add(provider.name)
        assert names == {"dns.google", "cloudflare-dns.com", "dns.quad9.net"}

    def test_rotation_differs_across_queries(self, scenario):
        client = DoHClient(scenario.client, scenario.simulator,
                           scenario.trust_store,
                           rng=scenario.rng.stream("t4"))
        provider = scenario.providers[0]
        first = run_query(scenario, client, provider)
        # Defeat the provider cache by advancing past the TTL.
        scenario.simulator.run(until=scenario.simulator.now + 61)
        second = run_query(scenario, client, provider)
        a1 = sorted(str(r.rdata.address) for r in first.message.answers)
        a2 = sorted(str(r.rdata.address) for r in second.message.answers)
        assert a1 != a2  # rotation happened (deterministic for this seed)

    def test_nxdomain_propagates(self, scenario):
        client = DoHClient(scenario.client, scenario.simulator,
                           scenario.trust_store,
                           rng=scenario.rng.stream("t5"))
        outcome = run_query(scenario, client, scenario.providers[0],
                            qname="missing.ntp.org")
        assert outcome.ok  # HTTP layer fine
        assert outcome.message.rcode is RCode.NXDOMAIN

    def test_untrusted_client_store_fails_tls(self, scenario):
        rogue_store = TrustStore([CertificateAuthority(
            "Rogue CA", scenario.rng.stream("rogue"))])
        client = DoHClient(scenario.client, scenario.simulator, rogue_store,
                           rng=scenario.rng.stream("t6"))
        outcome = run_query(scenario, client, scenario.providers[0])
        assert outcome.status is DoHStatus.TLS_FAILURE

    def test_latency_recorded(self, scenario):
        client = DoHClient(scenario.client, scenario.simulator,
                           scenario.trust_store,
                           rng=scenario.rng.stream("t7"))
        outcome = run_query(scenario, client, scenario.providers[0])
        assert outcome.latency is not None
        assert outcome.latency > 0

    def test_timeout_on_unreachable_provider(self):
        scenario = build_pool_scenario(seed=4, num_providers=1)
        # Cut the provider's region off.
        provider = scenario.providers[0]
        topo = scenario.internet.topology
        region = provider.host.node
        for other in list(topo.nodes):
            if topo.link_between(region, other) is not None:
                topo.remove_link(region, other)
        client = DoHClient(scenario.client, scenario.simulator,
                           scenario.trust_store,
                           rng=scenario.rng.stream("t8"), timeout=1.0)
        outcome = run_query(scenario, client, provider)
        assert outcome.status is DoHStatus.TIMEOUT


class TestDoHServerValidation:
    """Exercise the HTTP-level rejections via a raw TLS client."""

    @pytest.fixture()
    def tls_conn(self, scenario):
        from repro.doh.tls import TlsClientConnection
        provider = scenario.providers[0]
        conn = TlsClientConnection(
            scenario.client, provider.endpoint, provider.name,
            scenario.trust_store, scenario.rng.stream("raw"))
        return conn

    def send_raw(self, scenario, tls_conn, raw_bytes):
        from repro.doh.http import HttpResponse
        responses = []
        tls_conn.on_established(lambda: tls_conn.send(raw_bytes))
        tls_conn.on_data(lambda data: responses.append(HttpResponse.decode(data)))
        tls_conn.connect()
        scenario.simulator.run()
        assert len(responses) == 1
        return responses[0]

    def test_wrong_path_404(self, scenario, tls_conn):
        from repro.doh.http import HttpRequest
        response = self.send_raw(
            scenario, tls_conn,
            HttpRequest(method="GET", target="/wrong?dns=AAAA").encode())
        assert response.status == 404

    def test_missing_dns_param_400(self, scenario, tls_conn):
        from repro.doh.http import HttpRequest
        response = self.send_raw(
            scenario, tls_conn,
            HttpRequest(method="GET", target="/dns-query").encode())
        assert response.status == 400

    def test_bad_base64_400(self, scenario, tls_conn):
        from repro.doh.http import HttpRequest
        response = self.send_raw(
            scenario, tls_conn,
            HttpRequest(method="GET", target="/dns-query?dns=!!!").encode())
        assert response.status == 400

    def test_wrong_content_type_415(self, scenario, tls_conn):
        from repro.doh.http import HttpRequest
        response = self.send_raw(
            scenario, tls_conn,
            HttpRequest(method="POST", target="/dns-query",
                        headers={"Content-Type": "text/plain"},
                        body=b"x").encode())
        assert response.status == 415

    def test_unsupported_method_405(self, scenario, tls_conn):
        from repro.doh.http import HttpRequest
        response = self.send_raw(
            scenario, tls_conn,
            HttpRequest(method="PUT", target="/dns-query").encode())
        assert response.status == 405

    def test_garbage_dns_payload_400(self, scenario, tls_conn):
        from repro.doh.encoding import b64url_encode
        from repro.doh.http import HttpRequest
        response = self.send_raw(
            scenario, tls_conn,
            HttpRequest(method="GET",
                        target=f"/dns-query?dns={b64url_encode(b'xx')}"
                        ).encode())
        assert response.status == 400
