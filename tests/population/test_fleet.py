"""The client fleet: batching, population semantics, reproducibility."""

import pytest

from repro.netsim.simulator import Simulator
from repro.population import BatchDispatcher, FleetConfig
from repro.scenarios import build_population_scenario


class TestBatchDispatcher:
    def test_coalesces_wakeups_into_bins(self):
        simulator = Simulator()
        dispatcher = BatchDispatcher(simulator, quantum=0.1)
        fired = []
        for index in range(10):
            # All fall inside the same 100 ms bin.
            dispatcher.call_after(0.01 + index * 0.005,
                                  lambda i=index: fired.append(i))
        simulator.run()
        assert fired == list(range(10))       # registration order
        assert dispatcher.batches == 1        # one simulator event
        assert dispatcher.dispatched == 10

    def test_distinct_bins_fire_in_time_order(self):
        simulator = Simulator()
        dispatcher = BatchDispatcher(simulator, quantum=0.1)
        fired = []
        dispatcher.call_after(0.35, lambda: fired.append("late"))
        dispatcher.call_after(0.05, lambda: fired.append("early"))
        simulator.run()
        assert fired == ["early", "late"]
        assert dispatcher.batches == 2

    def test_never_schedules_in_the_past(self):
        simulator = Simulator()
        simulator.schedule_at(0.15, lambda: None)
        simulator.run()
        dispatcher = BatchDispatcher(simulator, quantum=0.1)
        fired = []
        dispatcher.call_after(0.0, lambda: fired.append("now"))
        simulator.run()
        assert fired == ["now"]

    def test_validation(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            BatchDispatcher(simulator, quantum=0.0)
        with pytest.raises(ValueError):
            BatchDispatcher(simulator).call_after(-1.0, lambda: None)


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(num_clients=0)
        with pytest.raises(ValueError):
            FleetConfig(rounds=0)
        with pytest.raises(ValueError):
            FleetConfig(churn_rate=1.5)
        with pytest.raises(ValueError):
            FleetConfig(resolve_every=0)


class TestPopulationSemantics:
    def test_honest_world_has_no_victims(self):
        scenario = build_population_scenario(seed=21, num_clients=20,
                                             rounds=2)
        outcomes = scenario.run()
        assert outcomes.rounds == 40
        assert outcomes.availability == 1.0
        assert outcomes.victim_fraction == 0.0
        assert outcomes.syncs == outcomes.rounds_ok
        # Honest servers pull clients toward true time.
        assert outcomes.mean_abs_clock_error < 0.05

    def test_corrupted_fraction_drives_victim_fraction(self):
        fractions = []
        for corrupted in (0, 1, 2, 3):
            scenario = build_population_scenario(
                seed=22, num_clients=40, rounds=2, corrupted=corrupted)
            fractions.append(scenario.run().victim_fraction)
        assert fractions[0] == 0.0
        assert fractions == sorted(fractions)
        assert fractions[3] == 1.0
        # One of three corrupted providers owns ~1/3 of every pool.
        assert 0.15 < fractions[1] < 0.55

    def test_victims_are_time_shifted(self):
        scenario = build_population_scenario(
            seed=23, num_clients=30, rounds=2, corrupted=3, lie_offset=10.0)
        outcomes = scenario.run()
        assert outcomes.shifted_fraction == 1.0
        assert outcomes.mean_abs_clock_error > 5.0

    def test_empty_answer_dos_collapses_strict_availability(self):
        scenario = build_population_scenario(
            seed=24, num_clients=20, rounds=2, corrupted=1, behavior="empty")
        outcomes = scenario.run()
        assert outcomes.availability == 0.0
        assert outcomes.syncs == 0

    def test_quorum_extension_restores_liveness(self):
        scenario = build_population_scenario(
            seed=24, num_clients=20, rounds=2, corrupted=1,
            behavior="empty", min_answers=2)
        outcomes = scenario.run()
        assert outcomes.availability == 1.0
        assert outcomes.victim_fraction == 0.0

    def test_resolve_every_caches_pools_between_rounds(self):
        dense = build_population_scenario(seed=25, num_clients=10, rounds=4)
        sparse = build_population_scenario(seed=25, num_clients=10, rounds=4,
                                           resolve_every=4)
        dense_dns = dense.run().rounds  # drain both worlds first
        sparse.run()
        dense_queries = dense.telemetry.value("dns.stub.queries")
        sparse_queries = sparse.telemetry.value("dns.stub.queries")
        assert dense_dns == 40
        assert sparse_queries < dense_queries
        assert sparse_queries == 10 * 3  # one fan-out per client

    def test_ntp_servers_stay_off_population_access_edges(self):
        # A pool server co-located on a pop access edge would let its
        # clients sync without crossing the faulted access link.
        scenario = build_population_scenario(seed=35, num_clients=10,
                                             rounds=1, loss_rate=0.1)
        for host in scenario.internet.hosts:
            if host.name.startswith("ntp-"):
                assert not host.node.startswith("pop-edge-")
            if host.name.startswith("pop-"):
                assert host.node.startswith("pop-edge-")

    def test_fault_axes_degrade_the_whole_population(self):
        # Every fleet client attaches behind a faulted access edge, so
        # heavy loss must starve the population broadly — not just the
        # slice that happens to share the Figure 1 client's edge.
        clean = build_population_scenario(seed=32, num_clients=20, rounds=2)
        lossy = build_population_scenario(seed=32, num_clients=20, rounds=2,
                                          loss_rate=0.9)
        assert clean.run().availability == 1.0
        assert lossy.run().availability < 0.5

    def test_victims_require_a_completed_sync(self):
        # Near-total loss: picks of attacker servers whose SNTP
        # exchange times out must not count as victims.
        scenario = build_population_scenario(
            seed=33, num_clients=20, rounds=2, corrupted=3, loss_rate=0.97)
        outcomes = scenario.run()
        assert outcomes.victim_rounds == outcomes.syncs  # all providers lie
        assert outcomes.victim_rounds < outcomes.rounds_ok or \
            outcomes.rounds_ok == 0

    def test_population_curves_are_time_binned(self):
        scenario = build_population_scenario(
            seed=26, num_clients=30, rounds=3, corrupted=1, time_bin=10.0)
        outcomes = scenario.run()
        assert len(outcomes.victim_curve) >= 2
        times = [when for when, _ in outcomes.victim_curve]
        assert times == sorted(times)
        for _, fraction in outcomes.victim_curve:
            assert 0.0 <= fraction <= 1.0


class TestChurnAndReproducibility:
    def test_churn_leaves_and_rejoins(self):
        scenario = build_population_scenario(
            seed=27, num_clients=30, rounds=4, churn_rate=0.5)
        outcomes = scenario.run()
        assert outcomes.churn_leaves > 0
        assert outcomes.churn_joins == outcomes.churn_leaves
        # Every client still completes its round budget.
        assert outcomes.rounds == 30 * 4

    def test_churn_is_reproducible_under_fixed_seed(self):
        snapshots = []
        for _ in range(2):
            scenario = build_population_scenario(
                seed=28, num_clients=25, rounds=3, churn_rate=0.4,
                arrival="poisson", corrupted=1)
            scenario.run()
            snapshots.append(scenario.telemetry.snapshot_json())
        assert snapshots[0] == snapshots[1]

    def test_different_seeds_diverge(self):
        snapshots = []
        for seed in (29, 30):
            scenario = build_population_scenario(
                seed=seed, num_clients=25, rounds=3, churn_rate=0.4,
                arrival="poisson")
            scenario.run()
            snapshots.append(scenario.telemetry.snapshot_json())
        assert snapshots[0] != snapshots[1]

    def test_fleet_uses_batched_dispatch(self):
        # Dense fleet: client phases 20 ms apart against a 50 ms
        # dispatch quantum, so wake-ups must share bins.
        scenario = build_population_scenario(seed=31, num_clients=100,
                                             rounds=2, mean_interval=2.0)
        scenario.run()
        dispatcher = scenario.fleet.dispatcher
        assert dispatcher.dispatched >= 200
        # Strictly fewer simulator events than wake-ups proves rounds
        # actually coalesced into shared bins.
        assert dispatcher.batches < dispatcher.dispatched


class TestBuilderValidation:
    def test_corrupted_bounds(self):
        with pytest.raises(ValueError):
            build_population_scenario(corrupted=4, num_providers=3)

    def test_unknown_behavior(self):
        with pytest.raises(ValueError):
            build_population_scenario(corrupted=1, behavior="explode")

    def test_min_answers_bounds(self):
        with pytest.raises(ValueError):
            build_population_scenario(min_answers=0)
        with pytest.raises(ValueError):
            build_population_scenario(min_answers=4, num_providers=3)
        with pytest.raises(ValueError):
            FleetConfig(min_answers=0)

    def test_population_trial_rejects_non_grid_parameters(self):
        from repro.campaign import population_trial
        from repro.telemetry import MetricsRegistry

        with pytest.raises(ValueError, match="registry"):
            population_trial({"num_clients": 5,
                              "registry": MetricsRegistry()}, seed=1)
        with pytest.raises(ValueError, match="seed"):
            population_trial({"num_clients": 5, "seed": 3}, seed=1)
