"""Arrival processes: phases, distributions, determinism."""

import random

import pytest

from repro.population import (
    PeriodicArrivals,
    PoissonArrivals,
    make_arrivals,
)


class TestPeriodic:
    def test_phase_then_fixed_period(self):
        arrivals = PeriodicArrivals(16.0, phase=4.0)
        assert arrivals.first_delay() == 4.0
        assert arrivals.next_delay() == 16.0
        assert arrivals.next_delay() == 16.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicArrivals(0.0)
        with pytest.raises(ValueError):
            PeriodicArrivals(10.0, phase=10.0)


class TestPoisson:
    def test_mean_matches_configuration(self):
        arrivals = PoissonArrivals(8.0, random.Random(1))
        gaps = [arrivals.next_delay() for _ in range(4000)]
        mean = sum(gaps) / len(gaps)
        assert 7.0 < mean < 9.0

    def test_deterministic_under_fixed_seed(self):
        a = PoissonArrivals(8.0, random.Random(5))
        b = PoissonArrivals(8.0, random.Random(5))
        assert [a.next_delay() for _ in range(10)] == \
               [b.next_delay() for _ in range(10)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, random.Random(1))


class TestFactory:
    def test_periodic_spreads_phases_over_the_fleet(self):
        firsts = [make_arrivals("periodic", 10.0, index, 5).first_delay()
                  for index in range(5)]
        assert firsts == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_poisson_requires_rng(self):
        with pytest.raises(ValueError):
            make_arrivals("poisson", 10.0, 0, 5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("burst", 10.0, 0, 5)
