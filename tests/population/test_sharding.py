"""Sharded megafleet determinism: windows, the pure round loop, and
the fold contracts.

Deliberately hypothesis-free: the CI bench-smoke job (which has no
hypothesis installed) runs the serial==sharded byte-equality checks
from here directly.
"""

import random

import pytest

from repro.netsim.address import IPAddress
from repro.population.arrivals import make_arrivals
from repro.population.fleet import (
    ANSWERS_COMPLETE,
    ROUND_BEGIN,
    SYNC_COMPLETE,
    ClientRoundState,
    FleetConfig,
    RoundRng,
    advance_round,
)
from repro.population.sharding import (
    ShardedFleet,
    invariant_snapshot_json,
    plan_shards,
    population_invariant,
    shard_invariant_spec,
)
from repro.scenarios.spec import (
    FleetSpec,
    LinkSpec,
    NetworkSpec,
    ScenarioSpec,
    materialize,
    population_spec,
)


# ----------------------------------------------------------------------
# plan_shards.
# ----------------------------------------------------------------------

class TestPlanShards:
    def test_even_split(self):
        plans = plan_shards(100, 4)
        assert [p.size for p in plans] == [25, 25, 25, 25]
        assert [p.first_index for p in plans] == [0, 25, 50, 75]

    def test_remainder_spreads_over_first_shards(self):
        plans = plan_shards(10, 3)
        assert [p.size for p in plans] == [4, 3, 3]
        assert [p.first_index for p in plans] == [0, 4, 7]

    def test_windows_are_contiguous_and_cover(self):
        for population, shards in [(1, 1), (7, 2), (97, 8), (1000, 13)]:
            plans = plan_shards(population, shards)
            covered = []
            for plan in plans:
                covered.extend(range(plan.first_index,
                                     plan.first_index + plan.size))
            assert covered == list(range(population))

    def test_shards_capped_at_population(self):
        plans = plan_shards(3, 8)
        assert len(plans) == 3
        assert all(p.size == 1 for p in plans)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            plan_shards(0, 1)
        with pytest.raises(ValueError):
            plan_shards(10, 0)


# ----------------------------------------------------------------------
# The pure round loop.
# ----------------------------------------------------------------------

def _rng(seed=1):
    return RoundRng(select=random.Random(seed),
                    churn=random.Random(seed + 1),
                    arrivals=make_arrivals("periodic", 16.0, 0, 1,
                                           rng=random.Random(seed + 2)))


POOL = [IPAddress("172.16.0.1"), IPAddress("172.16.0.2")]


class TestAdvanceRound:
    def test_first_round_resolves(self):
        step = advance_round(FleetConfig(), ClientRoundState(), _rng(),
                             ROUND_BEGIN)
        assert step.action == "resolve"

    def test_cached_pool_reused_between_resolves(self):
        config = FleetConfig(rounds=4, resolve_every=2)
        state = ClientRoundState(pool=list(POOL), rounds_done=1)
        step = advance_round(config, state, _rng(), ROUND_BEGIN)
        assert step.action == "sync"
        assert step.pick in POOL

    def test_resolve_cadence_forces_requery(self):
        config = FleetConfig(rounds=4, resolve_every=2)
        state = ClientRoundState(pool=list(POOL), rounds_done=2)
        step = advance_round(config, state, _rng(), ROUND_BEGIN)
        assert step.action == "resolve"

    def test_answers_combine_to_sync(self):
        config = FleetConfig(rounds=3)
        state = ClientRoundState()
        answers = {0: list(POOL), 1: list(POOL), 2: list(POOL)}
        step = advance_round(config, state, _rng(), ANSWERS_COMPLETE,
                             answers=answers)
        assert step.action == "sync"
        assert state.pool == step.pool
        assert set(step.pool) == set(POOL)
        assert step.pick in step.pool

    def test_empty_combine_fails_round_and_reschedules(self):
        config = FleetConfig(rounds=3)
        state = ClientRoundState(pool=list(POOL))
        step = advance_round(config, state, _rng(), ANSWERS_COMPLETE,
                             answers={0: None, 1: list(POOL), 2: list(POOL)})
        assert step.action == "reschedule"
        assert step.failed
        assert state.pool is None          # strict combine drops the cache
        assert state.rounds_done == 1

    def test_sync_against_attacker_is_victim(self):
        config = FleetConfig(rounds=2)
        state = ClientRoundState(pool=list(POOL), rounds_done=0)
        step = advance_round(config, state, _rng(), SYNC_COMPLETE,
                             synced=True, attacker=True, clock_error=9.5)
        assert step.synced and step.victim and step.shifted
        assert step.clock_error == 9.5

    def test_timeout_is_not_a_victim(self):
        config = FleetConfig(rounds=2)
        state = ClientRoundState(pool=list(POOL))
        step = advance_round(config, state, _rng(), SYNC_COMPLETE,
                             synced=False, attacker=True, clock_error=9.5)
        assert step.timed_out and not step.synced and not step.victim
        assert step.clock_error == 0.0

    def test_final_round_stops(self):
        config = FleetConfig(rounds=1)
        state = ClientRoundState(pool=list(POOL))
        step = advance_round(config, state, _rng(), SYNC_COMPLETE,
                             synced=True)
        assert step.action == "stop"

    def test_churn_leaves_and_drops_pool(self):
        config = FleetConfig(rounds=5, churn_rate=1.0, rejoin_delay=30.0)
        state = ClientRoundState(pool=list(POOL))
        step = advance_round(config, state, _rng(), SYNC_COMPLETE,
                             synced=True)
        assert step.action == "leave"
        assert step.delay == 30.0
        assert state.pool is None

    def test_identical_streams_replay_identically(self):
        config = FleetConfig(rounds=6, churn_rate=0.3)
        runs = []
        for _ in range(2):
            state = ClientRoundState(pool=list(POOL))
            rng = _rng(99)
            steps = [advance_round(config, state, rng, SYNC_COMPLETE,
                                   synced=True)
                     for _ in range(4)]
            runs.append([(s.action, s.delay) for s in steps])
        assert runs[0] == runs[1]

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            advance_round(FleetConfig(), ClientRoundState(), _rng(),
                          "no-such-phase")


# ----------------------------------------------------------------------
# Spec surface.
# ----------------------------------------------------------------------

class TestSpecSurface:
    def test_fleet_spec_shards_round_trips(self):
        spec = population_spec(num_clients=10, shards=4)
        assert spec.fleet.shards == 4
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec

    def test_backbone_override_round_trips(self):
        spec = ScenarioSpec(
            network=NetworkSpec(backbone=LinkSpec(latency=0.02, jitter=0.0)),
            fleet=FleetSpec(size=4))
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.network.backbone.jitter == 0.0

    def test_shards_must_be_positive(self):
        with pytest.raises(Exception):
            FleetSpec(shards=0)

    def test_materialize_routes_shards_to_sharded_fleet(self):
        world = materialize(population_spec(num_clients=8, shards=2), 5)
        assert isinstance(world, ShardedFleet)
        assert world.shards == 2
        assert world.clients == 8

    def test_shards_one_stays_on_legacy_path(self):
        world = materialize(population_spec(num_clients=8, shards=1), 5)
        assert not isinstance(world, ShardedFleet)


# ----------------------------------------------------------------------
# Window identity.
# ----------------------------------------------------------------------

class TestWindowValidation:
    def test_window_must_fit_population(self):
        from repro.scenarios.spec import _materialize_population
        with pytest.raises(ValueError):
            _materialize_population(
                population_spec(num_clients=4), 3, None,
                window=(8, 4, 8))   # window [8, 12) beyond population 8

    def test_shard_worlds_host_only_their_window(self):
        from repro.scenarios.spec import _materialize_population
        world = _materialize_population(
            population_spec(num_clients=4), 3, None, window=(2, 2, 6))
        fleet = world.fleet
        assert fleet.clients == 2
        assert fleet.first_index == 2
        assert fleet.population == 6
        # Hosts carry global identities.
        names = {host.name for host in world.internet.hosts
                 if host.name.startswith("pop-")}
        assert names == {"pop-2", "pop-3"}


# ----------------------------------------------------------------------
# Determinism contracts.
# ----------------------------------------------------------------------

SEEDS = (101, 202)


class TestShardDeterminism:
    def test_single_shard_fold_matches_legacy_world_byte_for_byte(self):
        # K=1 through the sharded engine is the legacy world plus one
        # snapshot round trip: the *full* snapshot must survive it.
        for seed in SEEDS:
            legacy = materialize(population_spec(num_clients=16, rounds=2,
                                                 corrupted=1), seed)
            legacy.run()
            sharded = ShardedFleet(
                population_spec(num_clients=16, rounds=2, corrupted=1),
                seed, shards=1)
            sharded.executor = "serial"
            sharded.run()
            assert (sharded.telemetry.snapshot_json()
                    == legacy.telemetry.snapshot_json())

    def test_execution_mode_cannot_change_the_fold(self):
        # Same K, different executors: full-snapshot byte equality.
        spec = population_spec(num_clients=16, rounds=2, corrupted=1)
        for seed in SEEDS:
            folds = {}
            for mode in ("serial", "threads"):
                fleet = ShardedFleet(spec, seed, shards=4, workers=4)
                fleet.executor = mode
                fleet.run()
                folds[mode] = fleet.telemetry.snapshot_json()
            assert folds["serial"] == folds["threads"]

    def test_serial_vs_sharded_invariant_subset_byte_identical(self):
        # K=1 vs K=4 on the shard-invariant spec: the population's
        # integer-exact telemetry folds to the same bytes.
        for seed in SEEDS:
            reference = materialize(shard_invariant_spec(32, shards=1), seed)
            reference.run()
            expected = invariant_snapshot_json(reference.telemetry)

            sharded = materialize(shard_invariant_spec(32, shards=4), seed)
            outcomes = sharded.run()
            assert sharded.invariant_snapshot_json() == expected
            assert outcomes.rounds == reference.outcomes().rounds

    def test_outcomes_agree_with_legacy_on_invariant_spec(self):
        seed = 404
        reference = materialize(shard_invariant_spec(24, shards=1), seed)
        ref_outcomes = reference.run()
        sharded = materialize(shard_invariant_spec(24, shards=3), seed)
        outcomes = sharded.run()
        assert outcomes.victim_fraction == ref_outcomes.victim_fraction
        assert outcomes.availability == ref_outcomes.availability
        assert outcomes.syncs == ref_outcomes.syncs

    def test_invariant_predicate_shape(self):
        assert population_invariant("counter", "pop.rounds", {})
        assert population_invariant("timeseries", "pop.victim_fraction", {})
        assert not population_invariant("histogram", "pop.clock_abs_error",
                                        {})
        assert not population_invariant("counter", "net.datagrams_sent", {})
        assert not population_invariant("timeseries", "ntp.offset", {})
