"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError, match="probability"):
            check_probability(value)

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="p_attack"):
            check_probability(3, "p_attack")


class TestCheckFraction:
    def test_accepts_one(self):
        assert check_fraction(1.0) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.5)


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive(0.1) == 0.1

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001)


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", str) == "x"

    def test_rejects_with_names(self):
        with pytest.raises(TypeError, match="thing must be int, got str"):
            check_type("x", int, "thing")
