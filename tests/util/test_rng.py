"""Tests for repro.util.rng: determinism and stream independence."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.rng import RngRegistry, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_sensitivity(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_no_separator_collision(self):
        # "a/b" as one name must differ from ("a", "b") path.
        assert derive_seed(42, "a/b") != derive_seed(42, "a", "b")
        # and ("a/", "b") vs ("a", "/b") must differ too.
        assert derive_seed(42, "a/", "b") != derive_seed(42, "a", "/b")

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=30))
    def test_always_in_64bit_range(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**64


class TestMakeRng:
    def test_independent_streams(self):
        a = make_rng(7, "x")
        b = make_rng(7, "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_reproducible(self):
        a = make_rng(7, "x")
        b = make_rng(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_returns_random_instance(self):
        assert isinstance(make_rng(0, "s"), random.Random)


class TestRngRegistry:
    def test_stream_memoised(self):
        reg = RngRegistry(3)
        assert reg.stream("net") is reg.stream("net")

    def test_streams_differ(self):
        reg = RngRegistry(3)
        assert reg.stream("net") is not reg.stream("dns")

    def test_root_seed_property(self):
        assert RngRegistry(99).root_seed == 99

    def test_fork_produces_disjoint_universe(self):
        reg = RngRegistry(3)
        child = reg.fork("attacks")
        assert child.root_seed != reg.root_seed
        v_child = child.stream("s").random()
        v_parent = reg.stream("s").random()
        assert v_child != v_parent

    def test_fork_deterministic(self):
        a = RngRegistry(3).fork("x").stream("s").random()
        b = RngRegistry(3).fork("x").stream("s").random()
        assert a == b

    def test_shuffled_returns_copy(self):
        reg = RngRegistry(5)
        items = [1, 2, 3, 4, 5]
        shuffled = reg.shuffled(items, "shuffle")
        assert items == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == items

    def test_shuffled_deterministic(self):
        a = RngRegistry(5).shuffled(list(range(20)), "s")
        b = RngRegistry(5).shuffled(list(range(20)), "s")
        assert a == b

    def test_sample(self):
        reg = RngRegistry(5)
        picked = reg.sample(range(100), 10, "pick")
        assert len(picked) == 10
        assert len(set(picked)) == 10

    def test_iter_seeds_deterministic_sequence(self):
        reg = RngRegistry(11)
        it1 = reg.iter_seeds("mc")
        it2 = RngRegistry(11).iter_seeds("mc")
        first = [next(it1) for _ in range(5)]
        second = [next(it2) for _ in range(5)]
        assert first == second
        assert len(set(first)) == 5

    @given(st.integers(min_value=0, max_value=2**32))
    def test_same_root_same_draws(self, root):
        a = RngRegistry(root).stream("s").random()
        b = RngRegistry(root).stream("s").random()
        assert a == b
