"""Tests for repro.util.stats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    confidence_interval,
    mean,
    median,
    percentile,
    stddev,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single(self):
        assert mean([5.0]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStddev:
    def test_known_value(self):
        assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            math.sqrt(32.0 / 7.0)
        )

    def test_singleton_is_zero(self):
        assert stddev([3.0]) == 0.0

    def test_constant_is_zero(self):
        assert stddev([3.0, 3.0, 3.0]) == pytest.approx(0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stddev([])


class TestPercentile:
    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_within_bounds(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)


class TestConfidenceInterval:
    def test_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = confidence_interval(values)
        assert low <= mean(values) <= high

    def test_singleton_degenerates(self):
        assert confidence_interval([7.0]) == (7.0, 7.0)

    def test_wider_at_higher_confidence(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        low95, high95 = confidence_interval(values, 0.95)
        low99, high99 = confidence_interval(values, 0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])


class TestRunningStats:
    def test_matches_batch_mean(self):
        rs = RunningStats()
        values = [1.5, 2.5, 3.5, 10.0]
        rs.extend(values)
        assert rs.mean == pytest.approx(mean(values))
        assert rs.stddev == pytest.approx(stddev(values))

    def test_min_max(self):
        rs = RunningStats()
        rs.extend([3.0, -1.0, 7.0])
        assert rs.minimum == -1.0
        assert rs.maximum == 7.0

    def test_empty_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean

    def test_singleton_variance_zero(self):
        rs = RunningStats()
        rs.add(4.0)
        assert rs.variance == 0.0

    def test_merge_equivalent_to_combined(self):
        left, right, combined = RunningStats(), RunningStats(), RunningStats()
        a_values = [1.0, 2.0, 3.0]
        b_values = [10.0, 20.0]
        left.extend(a_values)
        right.extend(b_values)
        combined.extend(a_values + b_values)
        merged = left.merge(right)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        left, right = RunningStats(), RunningStats()
        left.extend([1.0, 2.0])
        merged = left.merge(right)
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_merge_both_empty(self):
        merged = RunningStats().merge(RunningStats())
        assert merged.count == 0

    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_welford_agrees_with_naive(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(mean(values), abs=1e-6)
        assert rs.stddev == pytest.approx(stddev(values), abs=1e-6)
