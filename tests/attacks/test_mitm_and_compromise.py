"""On-path MitM and compromised-provider attacks."""

import pytest

from repro.attacks.compromise import (
    CompromiseConfig,
    CompromisedResolverBehavior,
    compromise_provider,
    corrupt_first_k,
)
from repro.attacks.mitm import OnPathAttacker
from repro.core.pool import PoolGeneratorConfig
from repro.dns.client import StubResolver
from repro.dns.rrtype import RRType
from repro.doh.client import DoHClient, DoHStatus
from repro.netsim.address import IPAddress
from repro.scenarios import build_pool_scenario

FORGED = [f"203.0.113.{i + 1}" for i in range(4)]
CLIENT_LINK = "client-edge--eu-central"


class TestOnPathPlaintextDns:
    def test_poisons_stub_lookup(self):
        scenario = build_pool_scenario(seed=90)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.poison_a_records(scenario.pool_domain, FORGED)
        stub = StubResolver(scenario.client, scenario.simulator,
                            scenario.providers[0].address, timeout=5.0)
        outcomes = []
        stub.query(scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].ok
        assert {str(a) for a in outcomes[0].addresses} == set(FORGED)
        assert mitm.stats.dns_responses_rewritten == 1

    def test_inflation(self):
        scenario = build_pool_scenario(seed=91)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.poison_a_records(scenario.pool_domain, FORGED, inflate_to=16)
        stub = StubResolver(scenario.client, scenario.simulator,
                            scenario.providers[0].address, timeout=5.0)
        outcomes = []
        stub.query(scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert len(outcomes[0].addresses) == 16

    def test_empty_answer_dos(self):
        scenario = build_pool_scenario(seed=92)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.empty_a_answers(scenario.pool_domain)
        stub = StubResolver(scenario.client, scenario.simulator,
                            scenario.providers[0].address, timeout=5.0)
        outcomes = []
        stub.query(scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].ok
        assert outcomes[0].addresses == []

    def test_uninvolved_names_untouched(self):
        scenario = build_pool_scenario(seed=93)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.poison_a_records(scenario.pool_domain, FORGED)
        stub = StubResolver(scenario.client, scenario.simulator,
                            scenario.providers[0].address, timeout=5.0)
        outcomes = []
        stub.query("c.ntpns.org", RRType.A, outcomes.append)
        scenario.simulator.run()
        assert [str(a) for a in outcomes[0].addresses] == ["10.0.0.11"]


class TestOnPathVersusTls:
    def test_cannot_poison_doh_queries(self):
        """The same rewriting attacker is powerless against DoH."""
        scenario = build_pool_scenario(seed=94)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.poison_a_records(scenario.pool_domain, FORGED)
        pool = scenario.generate_pool_sync()
        assert pool.ok
        for address in pool.addresses:
            assert scenario.directory.is_benign(address)
        assert mitm.stats.dns_responses_rewritten == 0
        assert mitm.stats.tls_records_seen > 0

    def test_tls_blocking_is_dos_not_poison(self):
        scenario = build_pool_scenario(seed=95)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.block_tls()
        client = scenario.make_doh_client(timeout=1.0)
        outcomes = []
        provider = scenario.providers[0]
        client.query(provider.endpoint, provider.name,
                     scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].status is DoHStatus.TIMEOUT
        assert mitm.stats.packets_dropped > 0

    def test_tls_delay_slows_but_succeeds(self):
        scenario = build_pool_scenario(seed=96)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.delay_tls(0.2)
        client = scenario.make_doh_client(timeout=10.0)
        outcomes = []
        provider = scenario.providers[0]
        client.query(provider.endpoint, provider.name,
                     scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].ok
        # Handshake + request/response each cross the link twice.
        assert outcomes[0].latency > 0.4

    def test_blackhole(self):
        scenario = build_pool_scenario(seed=97)
        mitm = OnPathAttacker(scenario.internet, [CLIENT_LINK])
        mitm.block_everything()
        client = scenario.make_doh_client(timeout=0.5)
        outcomes = []
        provider = scenario.providers[0]
        client.query(provider.endpoint, provider.name,
                     scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].status is DoHStatus.TIMEOUT


class TestCompromisedProvider:
    def test_substitution(self):
        scenario = build_pool_scenario(seed=98)
        engine = compromise_provider(scenario.providers[0], CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.SUBSTITUTE,
            forged_addresses=FORGED))
        client = scenario.make_doh_client()
        outcomes = []
        provider = scenario.providers[0]
        client.query(provider.endpoint, provider.name,
                     scenario.pool_domain, RRType.A, outcomes.append)
        scenario.simulator.run()
        assert outcomes[0].ok
        answers = {str(r.rdata.address) for r in outcomes[0].message.answers}
        assert answers == set(FORGED)
        assert engine.poisoned_answers == 1

    def test_compromise_is_selective(self):
        scenario = build_pool_scenario(seed=99)
        compromise_provider(scenario.providers[0], CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.SUBSTITUTE,
            forged_addresses=FORGED))
        client = scenario.make_doh_client()
        outcomes = []
        provider = scenario.providers[0]
        client.query(provider.endpoint, provider.name, "c.ntpns.org",
                     RRType.A, outcomes.append)
        scenario.simulator.run()
        answers = {str(r.rdata.address) for r in outcomes[0].message.answers}
        assert answers == {"10.0.0.11"}

    def test_minority_compromise_bounded_by_algorithm1(self):
        """1 of 3 corrupted: exactly K of the N*K pool is attacker-fed."""
        scenario = build_pool_scenario(seed=100)
        corrupt_first_k(scenario.providers, 1, CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.SUBSTITUTE,
            forged_addresses=FORGED))
        pool = scenario.generate_pool_sync()
        assert pool.ok
        forged_set = {IPAddress(a) for a in FORGED}
        poisoned = sum(1 for a in pool.addresses if a in forged_set)
        assert poisoned == pool.truncate_length  # exactly one share
        assert poisoned / len(pool.addresses) == pytest.approx(1 / 3)

    def test_majority_compromise_wins_as_assumed(self):
        """2 of 3 corrupted: the assumption x ≥ 2/3 fails, so the pool
        is majority-attacker — the model's sharp boundary."""
        scenario = build_pool_scenario(seed=101)
        corrupt_first_k(scenario.providers, 2, CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.SUBSTITUTE,
            forged_addresses=FORGED))
        pool = scenario.generate_pool_sync()
        forged_set = {IPAddress(a) for a in FORGED}
        poisoned = sum(1 for a in pool.addresses if a in forged_set)
        assert poisoned / len(pool.addresses) == pytest.approx(2 / 3)

    def test_empty_behavior_collapses_pool(self):
        """fn.2: one corrupted resolver answering empty DoSes strict
        Algorithm 1."""
        scenario = build_pool_scenario(seed=102)
        corrupt_first_k(scenario.providers, 1, CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.EMPTY))
        pool = scenario.generate_pool_sync()
        assert not pool.ok or pool.truncate_length == 0

    def test_truthful_behavior_changes_nothing(self):
        scenario = build_pool_scenario(seed=103)
        corrupt_first_k(scenario.providers, 1, CompromiseConfig(
            target=scenario.pool_domain,
            behavior=CompromisedResolverBehavior.TRUTHFUL))
        pool = scenario.generate_pool_sync()
        assert pool.ok
        for address in pool.addresses:
            assert scenario.directory.is_benign(address)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompromiseConfig(target="pool.ntp.org",
                             behavior=CompromisedResolverBehavior.SUBSTITUTE)
