"""Over-population defence (E5 logic) and end-to-end time shift (E7)."""

import pytest

from repro.attacks.overpopulation import OverPopulationAttack
from repro.attacks.timeshift import TimeShiftExperiment
from repro.core.policy import TruncationPolicy
from repro.scenarios import build_pool_scenario


class TestOverPopulation:
    def test_truncation_neutralises_inflation(self):
        """With SHORTEST truncation, a 1-of-3 attacker inflating to 20
        addresses still owns exactly 1/3 of the pool."""
        scenario = build_pool_scenario(seed=120, num_providers=3,
                                       answers_per_query=4)
        attack = OverPopulationAttack(scenario, corrupted=1, inflate_to=20)
        result = attack.run(TruncationPolicy.SHORTEST)
        assert result.pool.ok
        assert result.attacker_fraction == pytest.approx(1 / 3)
        assert not result.attacker_controls_majority

    def test_without_truncation_attacker_wins(self):
        """Ablation: NONE truncation lets the inflated list dominate —
        reproducing [1]'s attack shape."""
        scenario = build_pool_scenario(seed=121, num_providers=3,
                                       answers_per_query=4)
        attack = OverPopulationAttack(scenario, corrupted=1, inflate_to=20)
        result = attack.run(TruncationPolicy.NONE)
        assert result.pool.ok
        # 20 attacker addresses vs 2x4 honest.
        assert result.attacker_fraction == pytest.approx(20 / 28)
        assert result.attacker_controls_majority

    def test_median_truncation_partial_defence(self):
        scenario = build_pool_scenario(seed=122, num_providers=3,
                                       answers_per_query=4)
        attack = OverPopulationAttack(scenario, corrupted=1, inflate_to=20)
        result = attack.run(TruncationPolicy.MEDIAN)
        # Median of (4, 4, 20) is 4: same as SHORTEST here.
        assert result.attacker_fraction == pytest.approx(1 / 3)

    def test_corrupted_count_validation(self):
        scenario = build_pool_scenario(seed=123)
        with pytest.raises(ValueError):
            OverPopulationAttack(scenario, corrupted=0)


class TestTimeShiftEndToEnd:
    """The paper's headline claim, one configuration per test."""

    @pytest.fixture(scope="class")
    def results(self):
        experiment = TimeShiftExperiment(seed=7, lie_offset=10.0,
                                         num_providers=3,
                                         corrupted_providers=1)
        return {r.configuration: r for r in experiment.run_all()}

    def test_plain_dns_naive_client_shifted(self, results):
        result = results["plain-dns+naive-sntp"]
        assert result.pool_malicious_fraction == 1.0
        assert result.shifted
        assert result.clock_error_after == pytest.approx(10.0, abs=0.5)

    def test_plain_dns_chronos_still_shifted(self, results):
        """[1]: Chronos cannot survive a fully poisoned pool."""
        result = results["plain-dns+chronos"]
        assert result.pool_malicious_fraction == 1.0
        assert result.shifted
        assert result.clock_error_after == pytest.approx(10.0, abs=0.5)

    def test_distributed_doh_bounds_malicious_fraction(self, results):
        for name in ("distributed-doh+naive-sntp", "distributed-doh+chronos"):
            result = results[name]
            assert result.pool_malicious_fraction == pytest.approx(1 / 3,
                                                                   abs=0.01)

    def test_distributed_doh_chronos_not_shifted(self, results):
        """The paper's proposal: Algorithm 1 + Chronos keeps time."""
        result = results["distributed-doh+chronos"]
        assert result.synced
        assert not result.shifted
        assert abs(result.clock_error_after) < 0.1

    def test_mitm_only_rewrites_plaintext(self, results):
        plain = results["plain-dns+chronos"]
        doh = results["distributed-doh+chronos"]
        assert "rewrote 1" in plain.details or "rewrote" in plain.details
        assert "rewrote 0" in doh.details
