"""Off-path poisoning: succeeds against weak stacks, fails against
hardened ones — the quantitative premise of the paper's Introduction."""

import pytest

from repro.attacks.offpath import OffPathPoisoner
from repro.dns.resolver import ResolveStatus, ResolverConfig
from repro.dns.rrtype import RRType
from repro.netsim.address import Endpoint, IPAddress
from repro.netsim.host import EPHEMERAL_RANGE

from tests.dns.conftest import build_dns_world

FORGED = [IPAddress("203.0.113.66")]


def run_poisoning_attempt(world, port_window=4, txid_bits=8):
    """Trigger a resolution and spray forged root-server responses."""
    poisoner = OffPathPoisoner(world.internet, injection_node="core")
    outcomes = []
    world.resolver.resolve("pool.ntppool.org", RRType.A, outcomes.append)
    # The resolver's first upstream query goes to the root server; the
    # attacker races it with forged answers claiming to be the root.
    poisoner.poison_resolver_lookup(
        victim_address=IPAddress("10.0.1.1"),
        qname="pool.ntppool.org", qtype=RRType.A,
        spoofed_server=Endpoint(IPAddress("10.0.0.1"), 53),
        forged_addresses=FORGED,
        port_window=port_window, txid_bits=txid_bits)
    world.simulator.run()
    assert len(outcomes) == 1
    return poisoner, outcomes[0]


class TestWeakResolver:
    def test_predictable_resolver_poisoned(self):
        """Sequential ports + tiny TXID space: the spray wins."""
        world = build_dns_world(
            seed=80,
            resolver_config=ResolverConfig(txid_bits=6,
                                           randomize_txid=False))
        world.resolver.host._randomize_ports = False
        poisoner, outcome = run_poisoning_attempt(world, port_window=4,
                                                  txid_bits=6)
        assert outcome.ok
        addresses = {str(record.rdata.address) for record in outcome.records}
        assert addresses == {"203.0.113.66"}
        assert world.resolver.stats.poisoned_acceptances >= 1

    def test_poison_sticks_in_cache(self):
        world = build_dns_world(
            seed=81,
            resolver_config=ResolverConfig(txid_bits=6,
                                           randomize_txid=False))
        world.resolver.host._randomize_ports = False
        run_poisoning_attempt(world, port_window=4, txid_bits=6)
        outcomes = []
        world.resolver.resolve("pool.ntppool.org", RRType.A, outcomes.append)
        world.simulator.run()
        assert outcomes[0].from_cache
        assert str(outcomes[0].records[0].rdata.address) == "203.0.113.66"


class TestHardenedResolver:
    def test_random_ports_and_txid_defeat_blind_spray(self):
        """Against 16-bit TXID × randomised ports, a 1024-packet burst
        practically never wins (and this seed's run confirms it)."""
        world = build_dns_world(seed=82)
        poisoner, outcome = run_poisoning_attempt(world, port_window=4,
                                                  txid_bits=8)
        assert outcome.ok
        addresses = {str(record.rdata.address) for record in outcome.records}
        assert "203.0.113.66" not in addresses
        assert world.resolver.stats.poisoned_acceptances == 0
        assert poisoner.total_packets_injected == 4 * 256


class TestGuessHelpers:
    def test_sequential_port_guesses(self):
        guesses = OffPathPoisoner.sequential_port_guesses(3)
        assert guesses == [EPHEMERAL_RANGE[0], EPHEMERAL_RANGE[0] + 1,
                           EPHEMERAL_RANGE[0] + 2]

    def test_port_guesses_wrap(self):
        guesses = OffPathPoisoner.sequential_port_guesses(
            3, start=EPHEMERAL_RANGE[1])
        assert guesses[0] == EPHEMERAL_RANGE[1]
        assert guesses[1] == EPHEMERAL_RANGE[0]

    def test_txid_space(self):
        assert OffPathPoisoner.txid_space(2) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            OffPathPoisoner.txid_space(0)

    def test_spray_accounting(self):
        world = build_dns_world(seed=83)
        poisoner, _ = run_poisoning_attempt(world, port_window=2,
                                            txid_bits=3)
        report = poisoner.reports[0]
        assert report.packets_injected == 2 * 8
        assert report.ports_covered == 2
        assert report.txids_covered == 8
