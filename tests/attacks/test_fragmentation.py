"""Fragmentation-poisoning tests (Herzberg & Shulman [5] model)."""

import pytest

from repro.attacks.fragmentation import FragmentationPoisoner
from repro.dns.client import StubResolver
from repro.dns.rrtype import RRType
from repro.scenarios import build_pool_scenario

FORGED = ["203.0.113.77", "203.0.113.78"]
CLIENT_LINK = "client-edge--eu-central"


def stub_lookup(scenario):
    stub = StubResolver(scenario.client, scenario.simulator,
                        scenario.providers[0].address, timeout=5.0)
    outcomes = []
    stub.query(scenario.pool_domain, RRType.A, outcomes.append)
    scenario.simulator.run()
    assert len(outcomes) == 1
    return outcomes[0]


class TestFragmentationPoisoner:
    def test_small_responses_are_untouchable(self):
        """Four A records fit in one fragment: attack has no purchase."""
        scenario = build_pool_scenario(seed=110, answers_per_query=4)
        poisoner = FragmentationPoisoner(
            scenario.internet, CLIENT_LINK, scenario.pool_domain, FORGED,
            mtu=576)
        outcome = stub_lookup(scenario)
        assert outcome.ok
        for address in outcome.addresses:
            assert scenario.directory.is_benign(address)
        assert poisoner.stats.oversized_seen == 0
        assert poisoner.stats.tails_rewritten == 0

    def test_oversized_response_tail_rewritten(self):
        """A large answer list fragments; trailing records get forged."""
        scenario = build_pool_scenario(seed=111, pool_size=64,
                                       answers_per_query=40)
        poisoner = FragmentationPoisoner(
            scenario.internet, CLIENT_LINK, scenario.pool_domain, FORGED,
            mtu=576)
        outcome = stub_lookup(scenario)
        assert outcome.ok
        assert poisoner.stats.oversized_seen >= 1
        assert poisoner.stats.tails_rewritten >= 1
        addresses = [str(a) for a in outcome.addresses]
        # Head of the answer is genuine, tail is forged.
        assert any(a in FORGED for a in addresses)
        assert any(scenario.directory.is_benign(a) for a in addresses)
        assert len(addresses) == 40

    def test_failed_ipid_prediction_changes_nothing(self):
        scenario = build_pool_scenario(seed=112, pool_size=64,
                                       answers_per_query=40)
        poisoner = FragmentationPoisoner(
            scenario.internet, CLIENT_LINK, scenario.pool_domain, FORGED,
            mtu=576, ipid_prediction_works=False)
        outcome = stub_lookup(scenario)
        assert outcome.ok
        assert poisoner.stats.tails_rewritten == 0
        for address in outcome.addresses:
            assert scenario.directory.is_benign(address)

    def test_other_domains_untouched(self):
        scenario = build_pool_scenario(seed=113, pool_size=64,
                                       answers_per_query=40)
        FragmentationPoisoner(
            scenario.internet, CLIENT_LINK, "victim.example", FORGED,
            mtu=576)
        outcome = stub_lookup(scenario)
        for address in outcome.addresses:
            assert scenario.directory.is_benign(address)

    def test_doh_immune_to_fragment_poisoning(self):
        """The same oversized lookup over DoH is untouchable: the tail
        the attacker would overwrite is MAC-protected ciphertext."""
        scenario = build_pool_scenario(seed=114, pool_size=64,
                                       answers_per_query=40)
        poisoner = FragmentationPoisoner(
            scenario.internet, CLIENT_LINK, scenario.pool_domain, FORGED,
            mtu=576)
        pool = scenario.generate_pool_sync()
        assert pool.ok
        for address in pool.addresses:
            assert scenario.directory.is_benign(address)
        assert poisoner.stats.tails_rewritten == 0
